package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/columnar"
	"repro/internal/encoding"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/flow"
	"repro/internal/obs"
	"repro/internal/obs/metrics"
	"repro/internal/plan"
	"repro/internal/repair"
	"repro/internal/resilience"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/storage"
)

// DataFlowEngine is the paper's proposed engine: queries run as
// push-based, credit-controlled pipelines whose stages are placed along
// the data path (storage processor, NICs, near-memory accelerator, CPU)
// by the optimizer, with no buffer pool and no data caches on the
// compute side (Sections 7.4-7.5).
type DataFlowEngine struct {
	Cluster   *fabric.Cluster
	Storage   *storage.Server
	Scheduler *sched.Scheduler

	// SecureWire encrypts every batch leaving the storage node and
	// decrypts it at the receiving NIC — the encryption step the paper
	// (Section 1) says cloud query plans must carry as a first-class
	// operation. Requires smart NICs; real AES-CTR+HMAC runs on the
	// payload.
	SecureWire bool

	// Faults, when set, is consulted by the flow runtime for mid-query
	// device-offline faults (storage-level faults are armed on the
	// object store directly).
	Faults *faults.Injector
	// StageTimeout arms the pipeline watchdog; 0 disables it.
	StageTimeout time.Duration
	// MaxRecoveryAttempts bounds how many times ExecuteOn will retry or
	// fail over one query; 0 means DefaultMaxRecoveryAttempts.
	MaxRecoveryAttempts int
	// PartialRestart enables stage-level checkpointing: pipelines record
	// completed-segment watermarks at stage boundaries, and a mid-query
	// device failure replays only the suffix since the last completed
	// checkpoint — on a re-hosted device — instead of the whole query.
	// Disabled automatically when the storage processor holds pushed-down
	// aggregation state (which no stage snapshot can capture).
	PartialRestart bool
	// CheckpointSegments is how many storage segments one checkpoint
	// epoch spans; 0 means DefaultCheckpointSegments. Smaller epochs
	// bound replay tighter but cost more marker traffic and snapshots.
	CheckpointSegments int
	// Tracing makes every execution record a virtual-time span timeline,
	// returned in Result.Trace. Off by default: disabled tracing adds
	// zero allocations to the per-batch hot path.
	Tracing bool
	// EagerDecode disables encoded predicate evaluation: plans that ask
	// for EncodedEval still run, but the storage scan decodes every
	// segment before filtering, as the pre-late-materialization engine
	// did. Results are bit-identical either way; only decode busy time
	// differs. Used by E23 as the baseline arm.
	EagerDecode bool
	// Resilience bundles the engine's gray-failure defenses: per-device
	// health tracking, hedged replica reads, speculative morsel
	// re-execution, circuit breakers and the global retry budget. Wire it
	// with EnableResilience so the object store, scheduler and fabric all
	// share one policy; nil (the default) disables every defense and
	// reproduces the pre-resilience engine exactly.
	Resilience *resilience.Policy
	// Metrics, when set (wire it with SetMetrics so storage, scheduler
	// and flow share the registry), publishes continuous fleet telemetry:
	// per-query resource attribution (busy time and bytes charged to the
	// context's tenant label), latency histograms, per-device and
	// per-link utilization gauges, and the layer counters every
	// subsystem folds in. Nil is off and adds zero allocations to the
	// per-batch hot path, exactly like Tracing.
	Metrics *metrics.Registry
	// SLO, when set, receives every query's wall latency. Point the
	// scheduler's SLO field at the same tracker (and set its
	// SLOShedBurnRate) to close the loop: burn-rate-driven shedding.
	SLO *metrics.SLOTracker
	// Repair is the self-healing storage controller, wired with
	// EnableRepair: payload verification on every replica read,
	// read-repair write-backs, and the background scrub/re-replication
	// loops (started by the caller via Repair.Run). Nil (the default)
	// disables verification and repair entirely and adds zero cost to
	// the read path.
	Repair *repair.Controller
	// pub caches the registry's resolved instruments so per-query
	// publishing is pure atomic updates; rebuilt when Metrics changes.
	pubMu sync.Mutex
	pub   *enginePublisher
	// Workers > 1 enables intra-query morsel parallelism: the storage
	// scan splits into per-segment morsels claimed by a worker pool, and
	// every parallelizable flow stage runs as a pool of that many workers
	// (clamped per stage to its device's replicated units). Results,
	// stats and metered totals are identical to Workers == 1 — only the
	// per-lane busy split, and therefore SimTime, changes. The one
	// exception is parallel partial aggregation: each replica flushes its
	// own partial state, so group-by plans ship a few extra KiB of
	// partials per worker to the final merge. Serial passive resources
	// (the storage media, network links) are never divided, so speedup
	// saturates where the data path does.
	Workers int

	mu    sync.Mutex
	stats map[string]plan.TableStats
	paths map[int]plan.PathModel
}

// DefaultMaxRecoveryAttempts bounds per-query recovery: enough to lose
// every accelerator tier on the path and still land on the CPU plan.
const DefaultMaxRecoveryAttempts = 5

// DefaultCheckpointSegments spans one checkpoint epoch over this many
// storage segments when CheckpointSegments is unset.
const DefaultCheckpointSegments = 4

// NewDataFlowEngine wires an engine onto a cluster.
func NewDataFlowEngine(c *fabric.Cluster) *DataFlowEngine {
	media := c.MustDevice(fabric.DevStorageMed)
	proc := c.StorageProc()
	link := c.LinkBetween(fabric.DevStorageMed, fabric.DevStorageProc)
	srv := storage.NewServer(storage.NewObjectStore(), media, proc, link)
	return &DataFlowEngine{
		Cluster:   c,
		Storage:   srv,
		Scheduler: sched.New(),
		stats:     make(map[string]plan.TableStats),
		paths:     make(map[int]plan.PathModel),
	}
}

// EnableResilience installs (or, with nil, removes) a gray-failure
// policy across every layer the engine owns: the object store hedges
// its replica reads and the scan speculates on straggling morsels, the
// scheduler consults the policy's circuit breakers at admission, and
// breaker state changes mark the corresponding fabric device degraded
// so placement scoring sees gray failures the moment they trip.
func (e *DataFlowEngine) EnableResilience(p *resilience.Policy) {
	e.Resilience = p
	e.Storage.Store().Resilience = p
	if p == nil {
		e.Scheduler.Breakers = nil
		return
	}
	e.Scheduler.Breakers = p.Breakers
	if p.Breakers != nil {
		p.Breakers.OnChange = func(dev string, st resilience.BreakerState) {
			if d := e.Cluster.Device(dev); d != nil {
				d.SetDegraded(st != resilience.Closed)
			}
			publishBreakerGauge(e.Metrics, dev, st)
		}
	}
}

// EnableRepair installs (or, with nil cfg semantics, constructs with
// defaults) the self-healing storage controller: every replica read is
// checksum-verified, clean payloads are written back over corrupt
// replicas (read-repair), and the returned controller's ScrubPass /
// ReclonePass / Run drive background scrubbing and re-replication. The
// controller shares the engine's resilience policy (corrupt replicas
// strike health and breakers), its SLO tracker (BurnMax pauses repair
// while the foreground misses its objective), its scheduler's repair
// admission class, and its metrics registry (durability gauges). Call
// after EnableResilience / SetMetrics so the collaborators exist.
func (e *DataFlowEngine) EnableRepair(cfg repair.Config) *repair.Controller {
	store := e.Storage.Store()
	c := repair.New(store, cfg)
	e.Storage.EnableVerify(true)
	c.AttachResilience(e.Resilience)
	c.AttachSLO(e.SLO)
	c.AttachAdmission(e.Scheduler.AllowRepair)
	c.AttachMetrics(e.Metrics)
	e.Repair = c
	return c
}

// DisableRepair removes the self-healing controller and read-path
// verification, restoring the pre-repair engine exactly.
func (e *DataFlowEngine) DisableRepair() {
	e.Repair = nil
	store := e.Storage.Store()
	store.Verify = nil
	store.WriteBack = false
	store.OnRepair = nil
}

// CreateTable registers a table.
func (e *DataFlowEngine) CreateTable(name string, schema *columnar.Schema) error {
	_, err := e.Storage.CreateTable(name, schema)
	return err
}

// Load ingests a batch and updates planner statistics.
func (e *DataFlowEngine) Load(name string, b *columnar.Batch) error {
	if err := e.Storage.Append(name, b); err != nil {
		return err
	}
	st := ComputeStats(b)
	e.mu.Lock()
	if prev, ok := e.stats[name]; ok {
		st = MergeStats(prev, st)
	}
	e.stats[name] = st
	e.mu.Unlock()
	return nil
}

// SetStats overrides a table's planner statistics (used by experiments
// that construct stats analytically).
func (e *DataFlowEngine) SetStats(name string, st plan.TableStats) {
	e.mu.Lock()
	e.stats[name] = st
	e.mu.Unlock()
}

// TableSchema resolves a table's schema (it satisfies sqlparse.Catalog).
func (e *DataFlowEngine) TableSchema(name string) (*columnar.Schema, error) {
	meta, err := e.Storage.Table(name)
	if err != nil {
		return nil, err
	}
	return meta.Schema, nil
}

// Stats returns the planner statistics for a table.
func (e *DataFlowEngine) Stats(name string) (plan.TableStats, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.stats[name]
	if !ok {
		return st, fmt.Errorf("core: no statistics for table %q", name)
	}
	return st, nil
}

// path returns (building lazily) the planner path for a compute node.
func (e *DataFlowEngine) path(node int) (plan.PathModel, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if pm, ok := e.paths[node]; ok {
		return pm, nil
	}
	pm, err := plan.FromCluster(e.Cluster, node)
	if err != nil {
		return pm, err
	}
	e.paths[node] = pm
	return pm, nil
}

// Plan enumerates ranked plan variants for a query on the given node.
func (e *DataFlowEngine) Plan(q *plan.Query, node int) ([]*plan.Physical, error) {
	return e.PlanExcluding(q, node, nil)
}

// PlanExcluding enumerates ranked plan variants that place no operator
// on the excluded (or offline) devices; the failover path uses it to
// re-plan around a device that just failed.
func (e *DataFlowEngine) PlanExcluding(q *plan.Query, node int, exclude map[string]bool) ([]*plan.Physical, error) {
	st, err := e.Stats(q.Table)
	if err != nil {
		return nil, err
	}
	pm, err := e.path(node)
	if err != nil {
		return nil, err
	}
	opt := &plan.Optimizer{Path: pm, Exclude: exclude}
	return opt.Enumerate(q, st)
}

// Execute plans, schedules and runs a query on compute node 0.
func (e *DataFlowEngine) Execute(ctx context.Context, q *plan.Query) (*Result, error) {
	return e.ExecuteOn(ctx, q, 0)
}

// ExecuteOn plans, schedules and runs a query on the given compute node,
// recovering from runtime faults. A failed device (StageError naming it)
// triggers failover: the device is excluded, placements re-enumerated —
// degrading to the CPU-only plan in the worst case — and the query
// re-admitted and re-executed. Transient faults (link flaps, exhausted
// storage retry budgets) re-execute on the same placements. The work an
// abandoned attempt burned is measured by meter deltas and reported as
// RecoveryBytes/RecoveryTime. With PartialRestart set, a device failure
// first tries a cheaper stage-level restart inside the attempt (see
// executePlan); only when that is impossible does the whole-query
// failover here take over.
//
// ctx bounds the whole lifecycle: admission (a queued query sheds with
// sched.ErrOverloaded when its deadline cannot be met), scan, stage
// execution, and recovery. A deadline or cancellation mid-flight
// releases the admission, unwinds every goroutine and credit, and
// surfaces as ErrDeadlineExceeded or ErrCancelled.
func (e *DataFlowEngine) ExecuteOn(ctx context.Context, q *plan.Query, node int) (*Result, error) {
	ctx = ctxOrBackground(ctx)
	startWall := time.Now()
	e.Scheduler.SetWorkers(e.Workers)
	maxAttempts := e.MaxRecoveryAttempts
	if maxAttempts <= 0 {
		maxAttempts = DefaultMaxRecoveryAttempts
	}
	exclude := make(map[string]bool)
	var failovers int
	var queryRetries int64
	var wasteBytes sim.Bytes
	var wasteTime sim.VTime
	// One trace spans the whole query: abandoned attempts drop their
	// spans (ClearSpans) but keep fault/failover/admit annotations, so
	// the final timeline shows the answer's execution plus the recovery
	// history that led to it.
	var tr *obs.Trace
	if e.Tracing {
		tr = obs.New()
	}
	rBefore := snapshotResilience(e.Storage.Store(), e.Resilience)

	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, lifecycleError(err)
		}
		variants, err := e.PlanExcluding(q, node, exclude)
		if err != nil {
			return nil, err
		}
		adm, err := e.Scheduler.AdmitTraced(ctx, variants, tr)
		if err != nil {
			return nil, lifecycleError(err)
		}
		tr.ClearSpans()
		before := e.snapshotMeters()
		res, err := func() (*Result, error) {
			defer e.Scheduler.Release(adm)
			return e.executePlan(ctx, adm.Plan, tr)
		}()
		e.reportBreakers(adm.Plan, err)
		if err == nil {
			res.Stats.Retries += queryRetries
			res.Stats.Failovers = failovers
			res.Stats.DegradedPlacement = failovers > 0 || res.Stats.PartialRestarts > 0
			res.Stats.RecoveryBytes += wasteBytes
			res.Stats.RecoveryTime += wasteTime
			// Re-fold the gray-failure counters over the whole lifecycle:
			// hedges and budget denials burned by abandoned attempts count
			// against this query, not just the attempt that answered.
			foldResilience(&res.Stats, e.Storage.Store(), e.Resilience, rBefore)
			e.publishQuery(ctx, res, time.Since(startWall))
			return res, nil
		}
		wb, wt := e.meterDelta(before)
		wasteBytes += wb
		wasteTime += wt
		if lerr := lifecycleError(err); lerr != err || ctx.Err() != nil {
			// The query was cancelled or timed out: recovery would only
			// burn more work the caller no longer wants.
			return nil, lifecycleError(errorOrCtx(lerr, ctx))
		}
		if attempt+1 >= maxAttempts {
			return nil, err
		}
		var se *flow.StageError
		switch {
		case errors.As(err, &se) && se.Device != "":
			exclude[se.Device] = true
			e.Scheduler.NoteFailover(se.Device)
			failovers++
			tr.AddEvent(obs.Event{Name: "failover", Track: se.Device, At: 0,
				Detail: fmt.Sprintf("stage %s failed (%v); re-planning without %s", se.Stage, se.Err, se.Device)})
		case faults.IsTransient(err):
			// Whole-query re-execution is the most expensive retry in the
			// system; it spends from the same global budget as read retries
			// and hedges, so a fault storm degrades to failing fast instead
			// of an unbounded retry storm.
			if e.Resilience != nil && !e.Resilience.Budget.TryAcquire() {
				return nil, fmt.Errorf("core: retry budget exhausted: %w", err)
			}
			queryRetries++
			tr.AddEvent(obs.Event{Name: "query-retry", Track: "engine", At: 0, Detail: err.Error()})
		default:
			return nil, err
		}
	}
}

// reportBreakers feeds one attempt's outcome into the policy's circuit
// breakers: a device-attributed stage failure charges that device's
// breaker, success credits every device the plan placed work on (which
// also closes any half-open breaker whose probe this attempt was).
func (e *DataFlowEngine) reportBreakers(ph *plan.Physical, err error) {
	if e.Resilience == nil || e.Resilience.Breakers == nil || ph == nil {
		return
	}
	br := e.Resilience.Breakers
	if err == nil {
		for _, dev := range ph.PlacedDevices() {
			br.Success(dev)
		}
		return
	}
	var se *flow.StageError
	if errors.As(err, &se) && se.Device != "" {
		br.Failure(se.Device)
	}
}

// errorOrCtx prefers err, falling back to the context's own error when
// the run failed for an unrelated reason while ctx was already dead.
func errorOrCtx(err error, ctx context.Context) error {
	if errors.Is(err, ErrDeadlineExceeded) || errors.Is(err, ErrCancelled) {
		return err
	}
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

// meterDelta sums the link payload and bottleneck busy time accumulated
// since before — the wasted work of one abandoned attempt. Busy time is
// the effective (lane-divided) reading so replayed parallel work is not
// over-counted against the wall clock.
func (e *DataFlowEngine) meterDelta(before map[meterKey]meterSnap) (sim.Bytes, sim.VTime) {
	var bytes sim.Bytes
	var maxBusy sim.VTime
	for _, d := range e.Cluster.Devices() {
		if _, busy := deviceDelta(d, before); busy > maxBusy {
			maxBusy = busy
		}
	}
	for _, l := range e.Cluster.Links() {
		delta, busy := linkDelta(l, before)
		bytes += delta.Bytes
		if busy > maxBusy {
			maxBusy = busy
		}
	}
	return bytes, maxBusy
}

// ExecutePlan runs one specific physical plan variant, bypassing the
// scheduler. Experiments use it to force variants. Tracing follows
// e.Tracing, with a fresh trace per call.
func (e *DataFlowEngine) ExecutePlan(ctx context.Context, ph *plan.Physical) (*Result, error) {
	startWall := time.Now()
	var tr *obs.Trace
	if e.Tracing {
		tr = obs.New()
	}
	res, err := e.executePlan(ctx, ph, tr)
	if err != nil {
		return nil, lifecycleError(err)
	}
	e.publishQuery(ctx, res, time.Since(startWall))
	return res, nil
}

// executePlan runs one physical plan, recording onto tr when non-nil.
//
// With PartialRestart enabled (and no aggregation state pushed into the
// storage processor), the run checkpoints at segment-aligned epoch
// markers. A device failure mid-stream then restarts only the pipeline —
// stages rebuilt, snapshots restored, the scan resumed at the last
// completed epoch's watermark, the failed device's stages re-hosted on
// the CPU — instead of abandoning the query. Work done since the last
// completed checkpoint is the only replayed work; it is metered and
// reported as ReplayedBytes (and folded into RecoveryBytes/Time). A
// failure with no completed checkpoint, or one the CPU cannot host,
// falls through to the caller's whole-query failover.
func (e *DataFlowEngine) executePlan(ctx context.Context, ph *plan.Physical, tr *obs.Trace) (*Result, error) {
	ctx = ctxOrBackground(ctx)
	q := ph.Query
	numFields, tableSchema, err := e.tableSchema(q.Table)
	if err != nil {
		return nil, err
	}

	before := e.snapshotMeters()
	rBefore := snapshotResilience(e.Storage.Store(), e.Resilience)

	spec, emitsPartials, err := e.buildScanSpec(ph, numFields)
	if err != nil {
		return nil, err
	}
	spec.Workers = e.Workers

	// Pushed-down aggregation accumulates inside the storage processor,
	// out of reach of stage snapshots — no consistent cut exists, so such
	// plans recover by whole-query failover only.
	ckptEnabled := e.PartialRestart && !emitsPartials
	ckptEvery := e.CheckpointSegments
	if ckptEvery <= 0 {
		ckptEvery = DefaultCheckpointSegments
	}
	maxAttempts := e.MaxRecoveryAttempts
	if maxAttempts <= 0 {
		maxAttempts = DefaultMaxRecoveryAttempts
	}

	// The storage scan and the pipeline source share one virtual clock:
	// the scan advances it as it charges media/decode work, and the
	// source stamps every emitted batch with its reading, so downstream
	// stage spans replay against real scan progress.
	var clock *obs.VClock
	if tr.Enabled() {
		clock = obs.NewVClock()
		spec.Trace = tr
		spec.Clock = clock
	}

	var result Result
	var totalScan storage.ScanStats
	var maxBatch sim.Bytes
	var flowRes flow.Result

	// Cross-attempt restart state.
	var restore *flow.Restore // snapshots to reinstall, nil on first attempt
	startSeg := 0             // scan watermark to resume from
	epoch := 0                // monotonically increasing across attempts
	restarts := 0
	checkpoints := 0
	var replayed sim.Bytes
	var replayTime sim.VTime
	offline := make(map[string]bool) // devices whose stages were re-hosted

	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		stages, paths, err := e.buildStages(ph, spec, emitsPartials, tableSchema)
		if err != nil {
			return nil, err
		}
		if len(offline) > 0 {
			stages, paths, err = e.rehostStages(ph, stages, paths, offline)
			if err != nil {
				return nil, err
			}
		}

		var ck *flow.Checkpointer
		attemptSpec := spec
		attemptSpec.StartSegment = startSeg
		// Meters at the last completed checkpoint: everything charged
		// after this point is lost — and replayed — if the attempt dies.
		// Each epoch's meters are snapshotted at Mark time on the source
		// goroutine (an exact stream-positional cut: segments past the
		// watermark have not been charged yet) and promoted when the
		// epoch completes at the sink, so the waste accounting cannot be
		// skewed by how far the source ran ahead of the marker.
		lastCkpt := e.snapshotMeters()
		if ckptEnabled {
			ck = flow.NewCheckpointer()
			var snapMu sync.Mutex
			markSnaps := make(map[int]map[meterKey]meterSnap)
			ck.OnComplete = func(ep int) {
				snapMu.Lock()
				if s, ok := markSnaps[ep]; ok {
					lastCkpt = s
					delete(markSnaps, ep)
				}
				snapMu.Unlock()
			}
			segs := 0
			attemptSpec.Progress = func(next int) error {
				segs++
				if segs >= ckptEvery {
					segs = 0
					epoch++
					snapMu.Lock()
					markSnaps[epoch] = e.snapshotMeters()
					snapMu.Unlock()
					return ck.Mark(epoch, next)
				}
				return nil
			}
		}

		var scanStats storage.ScanStats
		pipe := &flow.Pipeline{
			Name: fmt.Sprintf("q-%s", ph.Variant),
			Source: func(emit flow.Emit) error {
				st, err := e.Storage.Scan(ctx, q.Table, attemptSpec, func(b *columnar.Batch) error {
					if n := sim.Bytes(b.ByteSize()); n > maxBatch {
						maxBatch = n
					}
					return emit(b)
				})
				scanStats = st
				return err
			},
			Stages:       stages,
			Paths:        paths,
			Workers:      e.Workers,
			StageTimeout: e.StageTimeout,
			Faults:       e.Faults,
			Trace:        tr,
			Clock:        clock,
			SourceTrack:  e.Storage.Proc().Name,
			Ckpt:         ck,
			Restore:      restore,
			Metrics:      e.Metrics,
		}
		if e.Resilience != nil {
			pipe.Health = e.Resilience.Health
		}

		attemptStart := len(result.Batches)
		res, runErr := pipe.Run(ctx, func(b *columnar.Batch) error {
			result.Batches = append(result.Batches, b)
			return nil
		})
		addScanStats(&totalScan, scanStats)
		checkpoints += ck.Completed()

		if runErr == nil {
			flowRes = res
			break
		}

		// Decide whether a stage-level restart is possible; otherwise the
		// caller's whole-query recovery takes over.
		var se *flow.StageError
		ep, haveCkpt := ck.Latest()
		switch {
		case ctx.Err() != nil:
			return nil, runErr
		case attempt+1 >= maxAttempts:
			return nil, runErr
		case !errors.As(runErr, &se) || se.Device == "" || !haveCkpt:
			return nil, runErr
		case se.Device == ph.Path.Sites[0].Device.Name:
			// The source's own host died; there is nothing to re-host it on.
			return nil, runErr
		}

		// Everything charged since the last completed checkpoint is lost
		// work this restart will redo.
		wb, wt := e.meterDelta(lastCkpt)
		replayed += wb
		replayTime += wt

		// Roll the delivered output back to the checkpoint's sink
		// watermark and arm the next attempt.
		result.Batches = result.Batches[:attemptStart+int(ck.SinkBatches(ep))]
		restore = &flow.Restore{Epoch: ep, Snaps: ck.Snaps(ep)}
		if seg, ok := ck.Resume(ep).(int); ok {
			startSeg = seg
		}
		offline[se.Device] = true
		restarts++
		e.Scheduler.NoteFailover(se.Device)
		tr.AddEvent(obs.Event{Name: "partial-restart", Track: se.Device, At: clock.Now(),
			Detail: fmt.Sprintf("stage %s failed (%v); replaying from epoch %d (segment %d), re-hosting %s stages on %s",
				se.Stage, se.Err, ep, startSeg, se.Device, ph.Path.CPU().Name)})
		if tr.Enabled() {
			at := clock.Now()
			tr.AddSpan(obs.Span{Name: fmt.Sprintf("restart@epoch%d", ep), Track: ph.Path.CPU().Name,
				Kind: obs.SpanSetup, Start: at, End: at, Seq: int64(ep), Bytes: wb})
		}
	}

	result.Stats = e.buildStats(ph, before, flowRes, totalScan, maxBatch, &result)
	result.Stats.PartialRestarts = restarts
	result.Stats.Checkpoints = checkpoints
	result.Stats.ReplayedBytes = replayed
	result.Stats.RecoveryBytes += replayed
	result.Stats.RecoveryTime += replayTime
	foldResilience(&result.Stats, e.Storage.Store(), e.Resilience, rBefore)
	result.Trace = tr
	sampleMeterSeries(e.Cluster, tr, before)
	sampleHealthSeries(tr, e.Resilience)
	return &result, nil
}

// rehostStages substitutes the path CPU for every stage hosted on a
// device in offline, re-deriving inter-stage link paths. A stage whose
// operator the CPU cannot run fails the re-host (the caller then falls
// back to whole-query failover, which re-plans from scratch).
func (e *DataFlowEngine) rehostStages(ph *plan.Physical, stages []flow.Placed, paths [][]*fabric.Link, offline map[string]bool) ([]flow.Placed, [][]*fabric.Link, error) {
	cpu := ph.Path.CPU()
	prev := ph.Path.Sites[0].Device
	out := make([]flow.Placed, len(stages))
	outPaths := make([][]*fabric.Link, len(stages))
	for i, st := range stages {
		if offline[st.Device.Name] {
			if !cpu.Can(st.Op) {
				return nil, nil, fmt.Errorf("core: cannot re-host %s stage %q on %s", st.Op, st.Stage.Name(), cpu.Name)
			}
			st.Device = cpu
		}
		links, err := e.Cluster.Path(prev.Name, st.Device.Name)
		if err != nil {
			return nil, nil, err
		}
		out[i] = st
		outPaths[i] = links
		prev = st.Device
	}
	return out, outPaths, nil
}

// addScanStats folds one attempt's scan stats into the query total.
func addScanStats(dst *storage.ScanStats, s storage.ScanStats) {
	dst.SegmentsTotal += s.SegmentsTotal
	dst.SegmentsPruned += s.SegmentsPruned
	dst.MediaBytes += s.MediaBytes
	dst.ShippedBytes += s.ShippedBytes
	dst.ShippedRows += s.ShippedRows
	dst.ProcTime += s.ProcTime
	dst.Retries += s.Retries
	dst.ReplicaFallbacks += s.ReplicaFallbacks
	dst.RetryBytes += s.RetryBytes
	dst.EncodedEvalSegments += s.EncodedEvalSegments
	dst.DecodedBytes += s.DecodedBytes
	dst.DecodedBytesSaved += s.DecodedBytesSaved
	dst.SpeculativeMorsels += s.SpeculativeMorsels
	dst.SpeculativeWins += s.SpeculativeWins
	dst.SpeculativeBytes += s.SpeculativeBytes
	dst.CorruptReads += s.CorruptReads
	dst.ReadRepairs += s.ReadRepairs
	dst.RepairBytes += s.RepairBytes
}

func (e *DataFlowEngine) tableSchema(name string) (int, *columnar.Schema, error) {
	meta, err := e.Storage.Table(name)
	if err != nil {
		return 0, nil, err
	}
	return meta.Schema.NumFields(), meta.Schema, nil
}

// buildScanSpec translates the plan's site-0 placements into the storage
// scan request.
func (e *DataFlowEngine) buildScanSpec(ph *plan.Physical, numFields int) (storage.ScanSpec, bool, error) {
	q := ph.Query
	spec := storage.ScanSpec{Projection: q.Projection}
	filterAtStorage := ph.HasPlacement(fabric.OpFilter, plan.SiteStorage)
	preaggAtStorage := ph.HasPlacement(fabric.OpPreAgg, plan.SiteStorage)
	countAtStorage := ph.HasPlacement(fabric.OpCount, plan.SiteStorage)
	projectAtStorage := ph.HasPlacement(fabric.OpProject, plan.SiteStorage)

	spec.Filter = q.Filter
	spec.Pushdown = filterAtStorage || preaggAtStorage || countAtStorage || projectAtStorage
	spec.EncodedEval = ph.EncodedEval && !e.EagerDecode
	if spec.Pushdown && !filterAtStorage && q.Filter != nil {
		// A plan that projects at storage but filters later would drop
		// the filter columns; the optimizer never builds this shape.
		return spec, false, fmt.Errorf("core: plan %q pushes projection but not the filter", ph.Variant)
	}
	emitsPartials := false
	switch {
	case preaggAtStorage:
		spec.PreAgg = q.GroupBy
		emitsPartials = true
	case countAtStorage:
		spec.PreAgg = &expr.GroupBy{Aggs: []expr.AggSpec{{Func: expr.Count}}}
		emitsPartials = true
	case q.CountOnly && q.Projection == nil:
		// Counting later along the path: ship one narrow column only.
		narrow := 0
		if q.Filter != nil {
			narrow = q.Filter.Columns()[0]
		}
		spec.Projection = []int{narrow}
	case q.GroupBy != nil && q.Projection == nil:
		// Aggregating later: ship only the touched columns.
		spec.Projection = groupByColumns(q.GroupBy, q.Filter, numFields)
	}
	return spec, emitsPartials, nil
}

// groupByColumns unions group-by and filter columns in ascending order.
func groupByColumns(g *expr.GroupBy, filter expr.Predicate, numFields int) []int {
	seen := make(map[int]bool)
	var out []int
	add := func(c int) {
		if c >= 0 && c < numFields && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	for _, c := range g.GroupCols {
		add(c)
	}
	for _, a := range g.Aggs {
		if a.Func != expr.Count {
			add(a.Col)
		}
	}
	if filter != nil {
		for _, c := range filter.Columns() {
			add(c)
		}
	}
	// Ascending order matches storage shipping order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// buildStages assembles the downstream pipeline (everything after the
// storage scan) from the plan's placements.
func (e *DataFlowEngine) buildStages(ph *plan.Physical, spec storage.ScanSpec, partials bool, tableSchema *columnar.Schema) ([]flow.Placed, [][]*fabric.Link, error) {
	q := ph.Query
	pm := ph.Path
	numFields := tableSchema.NumFields()

	// Track the shipped format between stages.
	currentCols := spec.ShippedColumns(numFields)
	posOf := func(c int) int {
		for i, cc := range currentCols {
			if cc == c {
				return i
			}
		}
		return -1
	}
	var stages []flow.Placed
	var paths [][]*fabric.Link
	prevDevice := pm.Sites[0].Device

	addStage := func(st flow.Stage, dev *fabric.Device, op fabric.OpClass) error {
		links, err := e.Cluster.Path(prevDevice.Name, dev.Name)
		if err != nil {
			return err
		}
		stages = append(stages, flow.Placed{Stage: st, Device: dev, Op: op, ChargeInput: true})
		paths = append(paths, links)
		prevDevice = dev
		return nil
	}

	// Wire security: seal at the storage NIC, open at the receiving NIC
	// (Section 1's encryption-as-plan-operation). The sealed payload is
	// what crosses the network, so the wire also carries the encoded
	// (smaller) representation.
	var wireKey *encoding.StreamKey
	if e.SecureWire {
		snic := pm.SiteIndex(plan.SiteStorageNIC)
		cnic := pm.SiteIndex(plan.SiteComputeNIC)
		if snic < 0 || cnic < 0 ||
			!pm.Sites[snic].Device.Can(fabric.OpEncrypt) ||
			!pm.Sites[cnic].Device.Can(fabric.OpDecrypt) {
			return nil, nil, fmt.Errorf("core: SecureWire requires smart NICs on both ends")
		}
		wireKey = encoding.NewStreamKey([]byte("flow:" + q.Table))
	}

	aggregatePlaced := false
	for i := 1; i < len(pm.Sites); i++ {
		site := pm.Sites[i]
		// The receiving NIC opens sealed batches before running its own
		// stages.
		if wireKey != nil && site.Site == plan.SiteComputeNIC {
			if err := addStage(&exec.DecryptStage{Key: wireKey}, site.Device, fabric.OpDecrypt); err != nil {
				return nil, nil, err
			}
		}
		for _, op := range ph.PlacementsAt(i) {
			switch op {
			case fabric.OpFilter:
				pred := expr.Rebase(q.Filter, posOf)
				if err := addStage(&exec.FilterStage{Pred: pred}, site.Device, fabric.OpFilter); err != nil {
					return nil, nil, err
				}
			case fabric.OpProject:
				var positions []int
				for _, c := range q.Projection {
					positions = append(positions, posOf(c))
				}
				if err := addStage(&exec.ProjectStage{Columns: positions}, site.Device, fabric.OpProject); err != nil {
					return nil, nil, err
				}
				currentCols = q.Projection
			case fabric.OpPreAgg:
				budget := stateBudgetGroups(site.Device)
				var agg *expr.PartialAggregator
				var raw bool
				if partials {
					agg = expr.NewPartialAggregator(mergeSpec(q.GroupBy), expr.PartialSchema(*q.GroupBy, tableSchema), budget)
				} else {
					raw = true
					rebased := q.GroupBy.Rebase(posOf)
					agg = expr.NewPartialAggregator(rebased, tableSchema.Project(currentCols), budget)
				}
				if err := addStage(&exec.PreAggStage{Agg: agg, Raw: raw}, site.Device, fabric.OpPreAgg); err != nil {
					return nil, nil, err
				}
				partials = true
			case fabric.OpCount:
				if err := addStage(&exec.CountStage{}, site.Device, fabric.OpCount); err != nil {
					return nil, nil, err
				}
				partials = false
				aggregatePlaced = true // the count IS the result
			case fabric.OpAggregate:
				var stage *exec.FinalAggStage
				if partials {
					stage = &exec.FinalAggStage{Agg: expr.NewFinalAggregator(*q.GroupBy, tableSchema), Raw: false}
				} else {
					rebased := q.GroupBy.Rebase(posOf)
					stage = &exec.FinalAggStage{Agg: expr.NewFinalAggregator(rebased, tableSchema.Project(currentCols)), Raw: true}
				}
				if err := addStage(stage, site.Device, fabric.OpAggregate); err != nil {
					return nil, nil, err
				}
				partials = false
				aggregatePlaced = true
			case fabric.OpSort:
				if err := addStage(&exec.SortStage{ByCol: q.OrderBy}, site.Device, fabric.OpSort); err != nil {
					return nil, nil, err
				}
			}
		}
		// The sending NIC seals batches after running its own stages.
		if wireKey != nil && site.Site == plan.SiteStorageNIC {
			if err := addStage(&exec.EncryptStage{Key: wireKey}, site.Device, fabric.OpEncrypt); err != nil {
				return nil, nil, err
			}
		}
	}

	cpu := pm.CPU()
	// Storage-emitted partials (pre-agg or count pushdown) with no
	// downstream aggregate still need the terminal merge at the CPU.
	if partials && !aggregatePlaced {
		var stage *exec.FinalAggStage
		if q.CountOnly {
			countSpec := expr.GroupBy{Aggs: []expr.AggSpec{{Func: expr.Count}}}
			stage = &exec.FinalAggStage{Agg: expr.NewFinalAggregator(countSpec, tableSchema), Raw: false}
		} else {
			stage = &exec.FinalAggStage{Agg: expr.NewFinalAggregator(*q.GroupBy, tableSchema), Raw: false}
		}
		if err := addStage(stage, cpu, fabric.OpAggregate); err != nil {
			return nil, nil, err
		}
	}
	// Results must physically reach the CPU even when no stage lives
	// there.
	if prevDevice != cpu {
		if err := addStage(&deliverStage{}, cpu, fabric.OpScan); err != nil {
			return nil, nil, err
		}
	}
	if q.Limit > 0 {
		if err := addStage(&exec.LimitStage{N: q.Limit}, cpu, fabric.OpScan); err != nil {
			return nil, nil, err
		}
	}
	return stages, paths, nil
}

// mergeSpec rewrites a group-by for consumption of partial batches:
// group columns are positional (0..n-1) in the partial layout.
func mergeSpec(g *expr.GroupBy) expr.GroupBy {
	out := expr.GroupBy{GroupCols: make([]int, len(g.GroupCols)), Aggs: g.Aggs}
	for i := range out.GroupCols {
		out.GroupCols[i] = i
	}
	return out
}

// stateBudgetGroups converts a device's state budget into a group count.
func stateBudgetGroups(d *fabric.Device) int {
	if d.StateBudget == 0 {
		return 0
	}
	return int(d.StateBudget / expr.StateSize)
}

// deliverStage is the terminal passthrough that lands results in the
// compute node's cores.
type deliverStage struct{}

func (deliverStage) Name() string { return "deliver" }
func (deliverStage) Process(b *columnar.Batch, emit flow.Emit) error {
	return emit(b)
}
func (deliverStage) Flush(flow.Emit) error { return nil }

// buildStats derives the execution stats from meter deltas. Busy times
// are effective readings: work charged to a device's positional lanes
// is divided across its replicated units (fabric.EffectiveBusy), so
// SimTime reflects worker-pool parallelism while the metered byte and
// aggregate busy totals stay identical to a serial run.
func (e *DataFlowEngine) buildStats(ph *plan.Physical, before map[meterKey]meterSnap, flowRes flow.Result, scan storage.ScanStats, maxBatch sim.Bytes, res *Result) ExecStats {
	st := ExecStats{
		Engine:           "dataflow",
		Variant:          ph.Variant,
		LinkBytes:        make(map[string]sim.Bytes),
		DeviceBusy:       make(map[string]sim.VTime),
		Scan:             scan,
		Ports:            flowRes.Ports,
		ResultRows:       res.Rows(),
		Retries:          scan.Retries,
		ReplicaFallbacks: scan.ReplicaFallbacks,
		RecoveryBytes:    scan.RetryBytes,

		SpeculativeMorsels: scan.SpeculativeMorsels,
		SpeculativeWins:    scan.SpeculativeWins,
		SpeculativeBytes:   scan.SpeculativeBytes,

		CorruptReads: scan.CorruptReads,
		ReadRepairs:  scan.ReadRepairs,
		RepairBytes:  scan.RepairBytes,
	}
	var maxBusy sim.VTime
	for _, d := range e.Cluster.Devices() {
		_, busy := deviceDelta(d, before)
		if busy > 0 {
			st.DeviceBusy[d.Name] = busy
			if busy > maxBusy {
				maxBusy = busy
			}
		}
	}
	cpu := ph.Path.CPU()
	cpuDelta, cpuBusy := deviceDelta(cpu, before)
	st.CPUBytes = cpuDelta.Bytes
	st.CPUBusy = cpuBusy
	var latency sim.VTime
	for _, l := range e.Cluster.Links() {
		delta, busy := linkDelta(l, before)
		if delta.Bytes > 0 {
			st.LinkBytes[l.Name] = delta.Bytes
			st.MovedBytes += delta.Bytes
			if busy > maxBusy {
				maxBusy = busy
			}
			latency += l.Latency
		}
	}
	// Pipelined makespan: the bottleneck resource plus one latency per
	// traversed hop.
	st.SimTime = maxBusy + latency
	// Peak compute-side memory: in-flight port buffering plus any final
	// aggregation state — there is no buffer pool.
	depth := 8
	var resultBytes sim.Bytes
	for _, b := range res.Batches {
		resultBytes += sim.Bytes(b.ByteSize())
	}
	st.PeakMemory = maxBatch*sim.Bytes(depth) + resultBytes + sim.Bytes(res.Rows())*expr.StateSize
	return st
}
