package memdev

import (
	"testing"
	"testing/quick"

	"repro/internal/columnar"
	"repro/internal/expr"
	"repro/internal/fabric"
	"repro/internal/sim"
)

func testMemory(t *testing.T, withAccel bool) (*Memory, *fabric.Link, *fabric.Device) {
	t.Helper()
	dram := fabric.NewMemory("dram")
	var accel *fabric.Device
	if withAccel {
		accel = fabric.NewNearMemoryAccel("nma")
	}
	link := &fabric.Link{
		Name: "dram--cpu", A: "dram", B: "cpu",
		Bandwidth: fabric.CoreMemBandwidth, Latency: fabric.DDRLatency,
	}
	cpu := fabric.NewCPU("cpu", 1)
	return New("mem0", dram, accel), link, cpu
}

func valueBatch(n int) *columnar.Batch {
	schema := columnar.NewSchema(
		columnar.Field{Name: "k", Type: columnar.Int64},
		columnar.Field{Name: "v", Type: columnar.Int64},
	)
	b := columnar.NewBatch(schema, n)
	for i := 0; i < n; i++ {
		b.AppendRow(columnar.IntValue(int64(i)), columnar.IntValue(int64(i%100)))
	}
	return b
}

func TestStoreAndRegion(t *testing.T) {
	m, _, _ := testMemory(t, true)
	m.Store("r", valueBatch(1000), false)
	r, err := m.Region("r")
	if err != nil {
		t.Fatal(err)
	}
	if r.DecodedBytes() != sim.Bytes(1000*16) {
		t.Errorf("DecodedBytes = %v", r.DecodedBytes())
	}
	if r.StoredBytes() != r.DecodedBytes() {
		t.Error("uncompressed region stored != decoded")
	}
	if _, err := m.Region("missing"); err == nil {
		t.Error("missing region lookup succeeded")
	}
	if m.ResidentBytes() != r.StoredBytes() {
		t.Error("ResidentBytes wrong")
	}
	m.Drop("r")
	if m.ResidentBytes() != 0 {
		t.Error("Drop did not release bytes")
	}
}

func TestCompressedRegionSmaller(t *testing.T) {
	m, _, _ := testMemory(t, true)
	r := m.Store("c", valueBatch(10000), true)
	if r.StoredBytes() >= r.DecodedBytes() {
		t.Errorf("compressed stored %v >= decoded %v", r.StoredBytes(), r.DecodedBytes())
	}
}

func TestFilterCPUVsNearCorrectness(t *testing.T) {
	m, link, cpu := testMemory(t, true)
	m.Store("r", valueBatch(5000), false)
	pred := expr.NewCmp(1, expr.Lt, columnar.IntValue(10)) // 10% selectivity

	cpuOut, cpuStats, err := m.FilterToCPU("r", pred, link, cpu)
	if err != nil {
		t.Fatal(err)
	}
	nearOut, nearStats, err := m.FilterNear("r", pred, link)
	if err != nil {
		t.Fatal(err)
	}
	if cpuOut.NumRows() != 500 || nearOut.NumRows() != 500 {
		t.Fatalf("rows cpu=%d near=%d, want 500", cpuOut.NumRows(), nearOut.NumRows())
	}
	// The near path must move ~10x fewer bytes across the link.
	if nearStats.BytesMoved*5 >= cpuStats.BytesMoved {
		t.Errorf("near moved %v vs cpu %v; expected big reduction", nearStats.BytesMoved, cpuStats.BytesMoved)
	}
	if nearStats.Time >= cpuStats.Time {
		t.Errorf("near time %v >= cpu time %v at 10%% selectivity", nearStats.Time, cpuStats.Time)
	}
}

func TestFilterNearRequiresAccel(t *testing.T) {
	m, link, _ := testMemory(t, false)
	m.Store("r", valueBatch(10), false)
	if _, _, err := m.FilterNear("r", expr.NewCmp(1, expr.Eq, columnar.IntValue(1)), link); err == nil {
		t.Error("FilterNear without accelerator succeeded")
	}
}

func TestDecompressOnDemand(t *testing.T) {
	m, link, cpu := testMemory(t, true)
	m.Store("c", valueBatch(20000), true)
	pred := expr.NewCmp(1, expr.Lt, columnar.IntValue(5))
	out, st, err := m.FilterNear("c", pred, link)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1000 {
		t.Errorf("rows = %d, want 1000", out.NumRows())
	}
	// Accelerator was charged decompress work.
	if m.Accel.Meter.Busy() <= 0 {
		t.Error("accelerator idle despite decompress-on-demand")
	}
	cpuOut, cpuSt, err := m.FilterToCPU("c", pred, link, cpu)
	if err != nil {
		t.Fatal(err)
	}
	if cpuOut.NumRows() != 1000 {
		t.Errorf("cpu rows = %d", cpuOut.NumRows())
	}
	if st.BytesMoved >= cpuSt.BytesMoved {
		t.Error("near path moved more than CPU path")
	}
}

func TestCountNear(t *testing.T) {
	m, link, _ := testMemory(t, true)
	m.Store("r", valueBatch(3000), false)
	cnt, st, err := m.CountNear("r", nil, link)
	if err != nil {
		t.Fatal(err)
	}
	if cnt != 3000 {
		t.Errorf("count = %d", cnt)
	}
	if st.BytesMoved != 8 {
		t.Errorf("count moved %v bytes, want 8", st.BytesMoved)
	}
	cnt, _, err = m.CountNear("r", expr.NewCmp(1, expr.Eq, columnar.IntValue(7)), link)
	if err != nil {
		t.Fatal(err)
	}
	if cnt != 30 {
		t.Errorf("filtered count = %d, want 30", cnt)
	}
}

func TestTransposeBothPaths(t *testing.T) {
	m, link, cpu := testMemory(t, true)
	m.Store("r", valueBatch(100), false)
	rowsNear, stNear, err := m.TransposeToRows("r", true, link, cpu)
	if err != nil {
		t.Fatal(err)
	}
	rowsCPU, stCPU, err := m.TransposeToRows("r", false, link, cpu)
	if err != nil {
		t.Fatal(err)
	}
	if len(rowsNear) != 100 || len(rowsCPU) != 100 {
		t.Fatal("row counts wrong")
	}
	if !rowsNear[5][0].Equal(rowsCPU[5][0]) {
		t.Error("paths disagree on data")
	}
	if stNear.BytesMoved >= stCPU.BytesMoved {
		t.Errorf("near transpose moved %v >= cpu %v", stNear.BytesMoved, stCPU.BytesMoved)
	}
}

func TestCompact(t *testing.T) {
	m, link, cpu := testMemory(t, true)
	m.Store("r", valueBatch(1000), false)
	live := columnar.NewBitmap(1000)
	for i := 0; i < 1000; i += 2 {
		live.Set(i)
	}
	stNear, err := m.Compact("r", live, true, link, cpu)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := m.Region("r")
	if r.Batch.NumRows() != 500 {
		t.Errorf("rows after compact = %d, want 500", r.Batch.NumRows())
	}
	// CPU-path compaction on the already-halved region.
	live2 := columnar.NewBitmap(500)
	for i := 0; i < 250; i++ {
		live2.Set(i)
	}
	stCPU, err := m.Compact("r", live2, false, link, cpu)
	if err != nil {
		t.Fatal(err)
	}
	if r.Batch.NumRows() != 250 {
		t.Errorf("rows = %d, want 250", r.Batch.NumRows())
	}
	if stNear.BytesMoved >= stCPU.BytesMoved {
		t.Errorf("near compact moved %v >= cpu %v", stNear.BytesMoved, stCPU.BytesMoved)
	}
	// Mismatched bitmap is rejected.
	if _, err := m.Compact("r", columnar.NewBitmap(7), true, link, cpu); err == nil {
		t.Error("mismatched live bitmap accepted")
	}
}

func TestPointerTreeBuildAndLookup(t *testing.T) {
	keys := make([]int64, 1000)
	vals := make([]int64, 1000)
	for i := range keys {
		keys[i] = int64(i * 3) // sparse keys
		vals[i] = int64(i)
	}
	tree, err := BuildPointerTree(keys, vals, 16)
	if err != nil {
		t.Fatal(err)
	}
	if tree.NumKeys() != 1000 {
		t.Errorf("NumKeys = %d", tree.NumKeys())
	}
	if tree.Depth() < 3 {
		t.Errorf("Depth = %d, want >= 3 for 1000 keys fanout 16", tree.Depth())
	}
	m, link, cpu := testMemory(t, true)
	for _, k := range []int64{0, 3, 999 * 3, 501 * 3} {
		v, found, _ := tree.LookupCPU(k, link, cpu)
		if !found || v != k/3 {
			t.Errorf("LookupCPU(%d) = %d found=%v", k, v, found)
		}
		v, found, _, err := tree.LookupNear(k, m, link)
		if err != nil {
			t.Fatal(err)
		}
		if !found || v != k/3 {
			t.Errorf("LookupNear(%d) = %d found=%v", k, v, found)
		}
	}
	// Absent key.
	if _, found, _ := tree.LookupCPU(1, link, cpu); found {
		t.Error("found absent key")
	}
}

func TestPointerChaseMovementAdvantage(t *testing.T) {
	keys := make([]int64, 100000)
	vals := make([]int64, 100000)
	for i := range keys {
		keys[i] = int64(i)
		vals[i] = int64(i) * 7
	}
	tree, err := BuildPointerTree(keys, vals, 16)
	if err != nil {
		t.Fatal(err)
	}
	m, _, cpu := testMemory(t, true)
	// Remote memory: RDMA-latency link.
	remote := &fabric.Link{Name: "rdma", A: "mem", B: "cpu",
		Bandwidth: sim.GbitPerSec(400), Latency: fabric.RDMALatency}
	_, _, cpuStats := tree.LookupCPU(4242, remote, cpu)
	_, _, nearStats, err := tree.LookupNear(4242, m, remote)
	if err != nil {
		t.Fatal(err)
	}
	if nearStats.BytesMoved != 16 {
		t.Errorf("near moved %v, want 16B", nearStats.BytesMoved)
	}
	if cpuStats.BytesMoved <= nearStats.BytesMoved*10 {
		t.Errorf("cpu moved %v, near %v: advantage too small", cpuStats.BytesMoved, nearStats.BytesMoved)
	}
	// Each CPU hop pays a network round trip; near pays DRAM latency.
	if cpuStats.Time <= nearStats.Time*2 {
		t.Errorf("cpu %v vs near %v: latency advantage missing", cpuStats.Time, nearStats.Time)
	}
}

func TestPointerTreeErrors(t *testing.T) {
	if _, err := BuildPointerTree([]int64{1}, []int64{}, 16); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := BuildPointerTree(nil, nil, 16); err == nil {
		t.Error("empty tree accepted")
	}
	if _, err := BuildPointerTree([]int64{1}, []int64{1}, 1); err == nil {
		t.Error("fanout 1 accepted")
	}
}

// Property: every inserted key is found with its value regardless of
// insertion order and fanout.
func TestPointerTreeLookupProperty(t *testing.T) {
	f := func(raw []int64, fanoutRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		fanout := 2 + int(fanoutRaw)%30
		// Dedupe keys.
		seen := map[int64]int64{}
		var keys, vals []int64
		for i, k := range raw {
			if _, dup := seen[k]; !dup {
				seen[k] = int64(i)
				keys = append(keys, k)
				vals = append(vals, int64(i))
			}
		}
		tree, err := BuildPointerTree(keys, vals, fanout)
		if err != nil {
			return false
		}
		for i, k := range keys {
			v, _, found := tree.lookupPath(k)
			if !found || v != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
