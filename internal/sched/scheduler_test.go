package sched

import (
	"context"
	"strings"
	"testing"

	"repro/internal/columnar"
	"repro/internal/expr"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/plan"
)

// twoNodeVariants builds ranked variants for the same query on two
// different compute nodes of one cluster, so admission can steer between
// them.
func twoNodeVariants(t *testing.T) (*fabric.Cluster, []*plan.Physical, []*plan.Physical) {
	t.Helper()
	c := fabric.NewCluster(fabric.DefaultClusterConfig())
	q := plan.NewQuery("t").WithFilter(expr.NewCmp(1, expr.Lt, columnar.IntValue(5)))
	stats := plan.StatsFromSchema(columnar.NewSchema(
		columnar.Field{Name: "k", Type: columnar.Int64},
		columnar.Field{Name: "qty", Type: columnar.Int64},
	))
	stats.Rows = 1_000_000
	stats.Distinct[1] = 50

	var perNode [][]*plan.Physical
	for node := 0; node < 2; node++ {
		pm, err := plan.FromCluster(c, node)
		if err != nil {
			t.Fatal(err)
		}
		opt := &plan.Optimizer{Path: pm}
		variants, err := opt.Enumerate(q, stats)
		if err != nil {
			t.Fatal(err)
		}
		perNode = append(perNode, variants)
	}
	return c, perNode[0], perNode[1]
}

func TestAdmitPicksTopVariantWhenIdle(t *testing.T) {
	_, v0, _ := twoNodeVariants(t)
	s := New()
	adm, err := s.Admit(context.Background(), v0)
	if err != nil {
		t.Fatal(err)
	}
	if adm.Variant != v0[0].Variant {
		t.Errorf("idle admission chose %q, want top-ranked %q", adm.Variant, v0[0].Variant)
	}
	if s.ActiveCount() != 1 {
		t.Errorf("ActiveCount = %d", s.ActiveCount())
	}
	s.Release(adm)
	if s.ActiveCount() != 0 {
		t.Error("release did not drain")
	}
}

func TestAdmitTracedRecordsDecision(t *testing.T) {
	_, v0, _ := twoNodeVariants(t)
	s := New()
	tr := obs.New()
	adm, err := s.AdmitTraced(context.Background(), v0, tr)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Release(adm)
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Name != "admit" || evs[0].Track != "sched" {
		t.Fatalf("events = %+v, want one admit on sched track", evs)
	}
	if !strings.Contains(evs[0].Detail, adm.Variant) {
		t.Errorf("admit detail %q does not name chosen variant %q", evs[0].Detail, adm.Variant)
	}
	// Nil trace must behave exactly like Admit.
	adm2, err := s.AdmitTraced(context.Background(), v0, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Release(adm2)
}

func TestAdmitRequiresVariants(t *testing.T) {
	if _, err := New().Admit(context.Background(), nil); err == nil {
		t.Error("empty admit succeeded")
	}
}

func TestFairShareLimitsAndRestores(t *testing.T) {
	c, v0, _ := twoNodeVariants(t)
	s := New()
	// Admit the same node-0 variant list twice: both use node 0's host
	// links, forcing shared-link limits.
	a1, err := s.Admit(context.Background(), v0)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := s.Admit(context.Background(), v0)
	if err != nil {
		t.Fatal(err)
	}
	// Find a link both admissions use.
	shared := c.LinkBetween(fabric.DevStorageNIC, fabric.DevSwitch)
	if shared == nil {
		t.Fatal("no storage uplink")
	}
	if load := s.LinkLoad(shared); load != 2 {
		t.Fatalf("shared link load = %d, want 2", load)
	}
	if shared.EffectiveBandwidth() != shared.Bandwidth/2 {
		t.Errorf("shared link not fair-shared: %v of %v", shared.EffectiveBandwidth(), shared.Bandwidth)
	}
	s.Release(a1)
	if shared.EffectiveBandwidth() != shared.Bandwidth {
		t.Errorf("limit not lifted after release: %v", shared.EffectiveBandwidth())
	}
	s.Release(a2)
	if s.LinkLoad(shared) != 0 {
		t.Error("load not drained")
	}
}

func TestContentionSteersVariant(t *testing.T) {
	// Load node-0's path heavily, then admit a candidate list that
	// contains node-0 and node-1 variants: the scheduler must choose a
	// node-1 variant despite node-0's better rank.
	_, v0, v1 := twoNodeVariants(t)
	s := New()
	s.ContentionPenalty = 10
	var held []*Admission
	for i := 0; i < 3; i++ {
		a, err := s.Admit(context.Background(), v0[:1]) // force node-0 placement
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, a)
	}
	// Candidates: node-0 top variant first (better rank), node-1 next.
	mixed := []*plan.Physical{v0[0], v1[0]}
	a, err := s.Admit(context.Background(), mixed)
	if err != nil {
		t.Fatal(err)
	}
	if a.Plan != v1[0] {
		t.Errorf("scheduler kept loaded node-0 variant under contention")
	}
	for _, h := range held {
		s.Release(h)
	}
	s.Release(a)
}

func TestDoubleReleasePanics(t *testing.T) {
	_, v0, _ := twoNodeVariants(t)
	s := New()
	a, err := s.Admit(context.Background(), v0)
	if err != nil {
		t.Fatal(err)
	}
	s.Release(a)
	defer func() {
		if recover() == nil {
			t.Error("double release did not panic")
		}
	}()
	s.Release(a)
}

func TestFairShareDisabled(t *testing.T) {
	c, v0, _ := twoNodeVariants(t)
	s := New()
	s.FairShare = false
	a1, _ := s.Admit(context.Background(), v0)
	a2, _ := s.Admit(context.Background(), v0)
	shared := c.LinkBetween(fabric.DevStorageNIC, fabric.DevSwitch)
	if shared.EffectiveBandwidth() != shared.Bandwidth {
		t.Error("FairShare=false still limited the link")
	}
	s.Release(a1)
	s.Release(a2)
}

func TestClearLimits(t *testing.T) {
	c, v0, _ := twoNodeVariants(t)
	s := New()
	s.Admit(context.Background(), v0)
	s.Admit(context.Background(), v0)
	s.ClearLimits()
	shared := c.LinkBetween(fabric.DevStorageNIC, fabric.DevSwitch)
	if shared.EffectiveBandwidth() != shared.Bandwidth {
		t.Error("ClearLimits left a limit")
	}
}
