package flow

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/columnar"
)

// Property: any chain of passthrough stages conserves rows and values in
// order, for arbitrary batch size sequences and queue depths.
func TestPipelineRowConservationProperty(t *testing.T) {
	f := func(batchSizes []uint8, depthRaw, stagesRaw uint8) bool {
		depth := 1 + int(depthRaw)%16
		nStages := 1 + int(stagesRaw)%5
		var want []int64
		next := int64(0)
		src := func(emit Emit) error {
			for _, szRaw := range batchSizes {
				sz := 1 + int(szRaw)%50
				vals := make([]int64, sz)
				for i := range vals {
					vals[i] = next
					want = append(want, next)
					next++
				}
				if err := emit(intBatch(vals...)); err != nil {
					return err
				}
			}
			return nil
		}
		stages := make([]Placed, nStages)
		for i := range stages {
			stages[i] = Placed{Stage: &passStage{name: "p"}}
		}
		p := &Pipeline{Name: "prop", Source: src, Stages: stages, Depth: depth}
		var got []int64
		if _, err := p.Run(context.Background(), func(b *columnar.Batch) error {
			got = append(got, b.Col(0).Int64s()...)
			return nil
		}); err != nil {
			return false
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: port accounting matches the data that flowed — data messages
// equal source batches at every port of a passthrough chain.
func TestPipelineMessageAccountingProperty(t *testing.T) {
	f := func(nBatches uint8, depthRaw uint8) bool {
		n := 1 + int(nBatches)%100
		depth := 2 + int(depthRaw)%8
		p := &Pipeline{
			Name:   "acct",
			Source: nBatchSource(n, 1),
			Stages: []Placed{{Stage: &passStage{name: "a"}}, {Stage: &passStage{name: "b"}}},
			Depth:  depth,
		}
		res, err := p.Run(context.Background(), func(*columnar.Batch) error { return nil })
		if err != nil {
			return false
		}
		for _, ps := range res.Ports {
			if ps.DataMessages != int64(n) {
				return false
			}
			if ps.CreditMessages <= 0 || ps.CreditMessages > ps.DataMessages {
				return false
			}
		}
		return res.SinkBatches == int64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
