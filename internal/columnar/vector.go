package columnar

import "fmt"

// Vector is one column of values of a single type, with optional null
// tracking. Only the slice matching the vector's type is populated;
// operators access it directly through the typed accessors for
// tight inner loops.
type Vector struct {
	typ   Type
	ints  []int64
	flts  []float64
	strs  []string
	bools []bool
	nulls *Bitmap // nil when the vector has no nulls
}

// NewVector returns an empty vector of the given type with room for cap
// values.
func NewVector(t Type, capacity int) *Vector {
	v := &Vector{typ: t}
	switch t {
	case Int64:
		v.ints = make([]int64, 0, capacity)
	case Float64:
		v.flts = make([]float64, 0, capacity)
	case String:
		v.strs = make([]string, 0, capacity)
	case Bool:
		v.bools = make([]bool, 0, capacity)
	default:
		panic(fmt.Sprintf("columnar: unknown type %v", t))
	}
	return v
}

// FromInt64s wraps an int64 slice as a vector without copying.
func FromInt64s(vals []int64) *Vector { return &Vector{typ: Int64, ints: vals} }

// FromFloat64s wraps a float64 slice as a vector without copying.
func FromFloat64s(vals []float64) *Vector { return &Vector{typ: Float64, flts: vals} }

// FromStrings wraps a string slice as a vector without copying.
func FromStrings(vals []string) *Vector { return &Vector{typ: String, strs: vals} }

// FromBools wraps a bool slice as a vector without copying.
func FromBools(vals []bool) *Vector { return &Vector{typ: Bool, bools: vals} }

// Type reports the vector's type.
func (v *Vector) Type() Type { return v.typ }

// Len reports the number of values, including nulls.
func (v *Vector) Len() int {
	switch v.typ {
	case Int64:
		return len(v.ints)
	case Float64:
		return len(v.flts)
	case String:
		return len(v.strs)
	case Bool:
		return len(v.bools)
	}
	return 0
}

// Int64s returns the backing slice of an Int64 vector.
func (v *Vector) Int64s() []int64 { return v.ints }

// Float64s returns the backing slice of a Float64 vector.
func (v *Vector) Float64s() []float64 { return v.flts }

// Strings returns the backing slice of a String vector.
func (v *Vector) Strings() []string { return v.strs }

// Bools returns the backing slice of a Bool vector.
func (v *Vector) Bools() []bool { return v.bools }

// AppendInt64 appends one int64 value.
func (v *Vector) AppendInt64(x int64) { v.ints = append(v.ints, x) }

// AppendFloat64 appends one float64 value.
func (v *Vector) AppendFloat64(x float64) { v.flts = append(v.flts, x) }

// AppendString appends one string value.
func (v *Vector) AppendString(x string) { v.strs = append(v.strs, x) }

// AppendBool appends one bool value.
func (v *Vector) AppendBool(x bool) { v.bools = append(v.bools, x) }

// AppendNull appends a NULL: the type's zero value plus a null bit.
func (v *Vector) AppendNull() {
	idx := v.Len()
	switch v.typ {
	case Int64:
		v.ints = append(v.ints, 0)
	case Float64:
		v.flts = append(v.flts, 0)
	case String:
		v.strs = append(v.strs, "")
	case Bool:
		v.bools = append(v.bools, false)
	}
	v.ensureNulls(idx + 1)
	v.nulls.Set(idx)
}

// AppendValue appends a dynamically typed value; the value's type must
// match the vector's.
func (v *Vector) AppendValue(val Value) {
	if val.Type != v.typ {
		panic(fmt.Sprintf("columnar: appending %v value to %v vector", val.Type, v.typ))
	}
	if val.Null {
		v.AppendNull()
		return
	}
	switch v.typ {
	case Int64:
		v.AppendInt64(val.I)
	case Float64:
		v.AppendFloat64(val.F)
	case String:
		v.AppendString(val.S)
	case Bool:
		v.AppendBool(val.B)
	}
}

// ensureNulls makes sure the null bitmap exists and covers at least n bits.
func (v *Vector) ensureNulls(n int) {
	if v.nulls == nil {
		v.nulls = NewBitmap(n)
		return
	}
	if v.nulls.Len() < n {
		grown := NewBitmap(n)
		for i := 0; i < v.nulls.Len(); i++ {
			if v.nulls.Get(i) {
				grown.Set(i)
			}
		}
		v.nulls = grown
	}
}

// IsNull reports whether value i is NULL.
func (v *Vector) IsNull(i int) bool {
	return v.nulls != nil && i < v.nulls.Len() && v.nulls.Get(i)
}

// HasNulls reports whether any value is NULL.
func (v *Vector) HasNulls() bool {
	return v.nulls != nil && v.nulls.Count() > 0
}

// NullCount reports how many values are NULL.
func (v *Vector) NullCount() int {
	if v.nulls == nil {
		return 0
	}
	return v.nulls.Count()
}

// Value returns value i as a dynamically typed Value.
func (v *Vector) Value(i int) Value {
	if v.IsNull(i) {
		return NullValue(v.typ)
	}
	switch v.typ {
	case Int64:
		return IntValue(v.ints[i])
	case Float64:
		return FloatValue(v.flts[i])
	case String:
		return StringValue(v.strs[i])
	case Bool:
		return BoolValue(v.bools[i])
	}
	panic("columnar: unknown vector type")
}

// Gather returns a new vector containing the values at the given row
// indices, in order. Null bits are carried over.
func (v *Vector) Gather(indices []int) *Vector {
	out := NewVector(v.typ, len(indices))
	for _, i := range indices {
		if v.IsNull(i) {
			out.AppendNull()
			continue
		}
		switch v.typ {
		case Int64:
			out.AppendInt64(v.ints[i])
		case Float64:
			out.AppendFloat64(v.flts[i])
		case String:
			out.AppendString(v.strs[i])
		case Bool:
			out.AppendBool(v.bools[i])
		}
	}
	return out
}

// Slice returns a view of rows [from, to). The backing storage is shared;
// the null bitmap, if present, is copied restricted to the range.
func (v *Vector) Slice(from, to int) *Vector {
	out := &Vector{typ: v.typ}
	switch v.typ {
	case Int64:
		out.ints = v.ints[from:to:to]
	case Float64:
		out.flts = v.flts[from:to:to]
	case String:
		out.strs = v.strs[from:to:to]
	case Bool:
		out.bools = v.bools[from:to:to]
	}
	if v.nulls != nil {
		out.nulls = NewBitmap(to - from)
		for i := from; i < to; i++ {
			if i < v.nulls.Len() && v.nulls.Get(i) {
				out.nulls.Set(i - from)
			}
		}
	}
	return out
}

// ByteSize estimates the in-memory footprint of the vector's values in
// bytes. Strings are charged their length plus a 16-byte header, matching
// what would move over a wire in a simple serialization.
func (v *Vector) ByteSize() int64 {
	var n int64
	switch v.typ {
	case Int64:
		n = int64(len(v.ints)) * 8
	case Float64:
		n = int64(len(v.flts)) * 8
	case Bool:
		n = int64(len(v.bools))
	case String:
		for _, s := range v.strs {
			n += int64(len(s)) + 16
		}
	}
	if v.nulls != nil {
		n += int64(v.nulls.ByteSize())
	}
	return n
}
