package experiments

import (
	"testing"
	"time"
)

func TestE21LifecycleShape(t *testing.T) {
	res, err := E21Lifecycle(6000, E21Options{
		Deadline:     2 * time.Second,
		OfferedLoads: []int{1, 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Recovery) != 3 {
		t.Fatalf("recovery rows = %d, want 3", len(res.Recovery))
	}
	for _, row := range res.Recovery {
		if row.Restarts != 1 || row.Checkpoints < 1 {
			t.Errorf("kill@%d: restarts=%d checkpoints=%d, want 1 restart over >=1 checkpoints",
				row.StrikeAt, row.Restarts, row.Checkpoints)
		}
		if row.PartialWaste <= 0 {
			t.Errorf("kill@%d: partial restart metered no replayed bytes", row.StrikeAt)
		}
		// The headline claim: replaying only the uncheckpointed suffix
		// strictly beats redoing the whole query, either way it is redone.
		if row.PartialWaste >= row.WholeWaste {
			t.Errorf("kill@%d: partial waste %v >= whole-query waste %v",
				row.StrikeAt, row.PartialWaste, row.WholeWaste)
		}
		if row.VolcanoWaste <= 0 {
			t.Errorf("kill@%d: volcano re-run metered no wasted bytes", row.StrikeAt)
		}
		if row.Failovers < 1 {
			t.Errorf("kill@%d: whole-query discipline recorded no failover", row.StrikeAt)
		}
	}

	if len(res.Overload) != 2 {
		t.Fatalf("overload rows = %d, want 2", len(res.Overload))
	}
	for _, row := range res.Overload {
		if row.OK < 1 {
			t.Errorf("load=%d: no query completed", row.Offered)
		}
		if row.OK+row.Shed+row.Expired != row.Offered {
			t.Errorf("load=%d: ok %d + shed %d + expired %d != offered %d",
				row.Offered, row.OK, row.Shed, row.Expired, row.Offered)
		}
		// Admitted queries finish inside the deadline (that is what kept
		// them in the OK bucket); allow scheduling slack on the wall clock.
		if row.P99 > res.Deadline+500*time.Millisecond {
			t.Errorf("load=%d: admitted p99 %v blew through the %v deadline",
				row.Offered, row.P99, res.Deadline)
		}
	}
	// A 16-query burst against 2 slots and a 2-deep queue must shed.
	last := res.Overload[len(res.Overload)-1]
	if last.Shed == 0 {
		t.Errorf("load=%d: nothing shed against 2 slots + 2-deep queue", last.Offered)
	}

	for _, key := range []string{
		"waste_partial@7", "waste_whole@7", "waste_volcano@7",
		"ok@load16", "shed@load16", "p99_ms@load16",
	} {
		if _, ok := res.Table.Metrics[key]; !ok {
			t.Errorf("metric %q missing from table", key)
		}
	}
}
