package experiments

import (
	"context"
	"fmt"

	"repro/internal/columnar"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fabric"
	"repro/internal/flow"
	"repro/internal/netsim"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/workload"
)

// E3Result carries the Figure 3 pipeline measurements.
type E3Result struct {
	Table       *Table
	CPUBusyNIC  sim.VTime // compute-CPU busy when the NIC hashes
	CPUBusyCPU  sim.VTime // compute-CPU busy when the CPU hashes
	HashesAgree bool
}

// E3NICHashPipeline reproduces Figure 3: a streaming pipeline with
// projection at storage and hashing at the receiving NIC, against the
// same plan with hashing on the CPU. The NIC variant leaves the CPU
// almost idle while producing identical hashes.
func E3NICHashPipeline(rows int) (*E3Result, error) {
	cfg := workload.DefaultLineitemConfig(rows)
	data := workload.GenLineitem(cfg)

	res := &E3Result{Table: &Table{
		ID:     "E3",
		Title:  "NIC hashing pipeline (Figure 3): who computes the hash",
		Header: []string{"variant", "cpu busy", "nic busy", "rows hashed"},
		Notes:  "projection at storage in both variants; hashes verified identical",
	}}

	run := func(hashOnNIC bool) (sim.VTime, sim.VTime, []int64, error) {
		cluster := fabric.NewCluster(fabric.DefaultClusterConfig())
		eng := core.NewDataFlowEngine(cluster)
		if err := eng.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
			return 0, 0, nil, err
		}
		if err := eng.Load("lineitem", data); err != nil {
			return 0, 0, nil, err
		}
		cpu := cluster.ComputeCPU(0)
		nic := cluster.ComputeNIC(0)

		spec := storage.ScanSpec{Projection: []int{workload.LOrderKey}, Pushdown: true}
		hashDev, hashOp := cpu, fabric.OpHash
		if hashOnNIC {
			hashDev = nic
		}
		var hashes []int64
		pipe := &flow.Pipeline{
			Name: "e3",
			Source: func(emit flow.Emit) error {
				_, err := eng.Storage.Scan(context.Background(), "lineitem", spec, emit)
				return err
			},
			Stages: []flow.Placed{
				{Stage: &exec.HashStage{KeyCol: 0}, Device: hashDev, Op: hashOp, ChargeInput: true},
				{Stage: passthrough{}, Device: cpu, Op: fabric.OpScan, ChargeInput: true},
			},
			Paths: [][]*fabric.Link{
				mustPath(cluster, fabric.DevStorageProc, hashDev.Name),
				mustPath(cluster, hashDev.Name, cpu.Name),
			},
		}
		if _, err := pipe.Run(context.Background(), func(b *columnar.Batch) error {
			hashes = append(hashes, b.Col(1).Int64s()...)
			return nil
		}); err != nil {
			return 0, 0, nil, err
		}
		return cpu.Meter.Busy(), nic.Meter.Busy(), hashes, nil
	}

	cpuBusyNIC, nicBusyNIC, hashesNIC, err := run(true)
	if err != nil {
		return nil, err
	}
	cpuBusyCPU, nicBusyCPU, hashesCPU, err := run(false)
	if err != nil {
		return nil, err
	}
	res.CPUBusyNIC, res.CPUBusyCPU = cpuBusyNIC, cpuBusyCPU
	res.HashesAgree = len(hashesNIC) == len(hashesCPU)
	if res.HashesAgree {
		for i := range hashesNIC {
			if hashesNIC[i] != hashesCPU[i] {
				res.HashesAgree = false
				break
			}
		}
	}
	res.Table.AddRow("hash@nic", cpuBusyNIC.String(), nicBusyNIC.String(), d(int64(len(hashesNIC))))
	res.Table.AddRow("hash@cpu", cpuBusyCPU.String(), nicBusyCPU.String(), d(int64(len(hashesCPU))))
	return res, nil
}

type passthrough struct{}

func (passthrough) Name() string                                    { return "deliver" }
func (passthrough) Process(b *columnar.Batch, emit flow.Emit) error { return emit(b) }
func (passthrough) Flush(flow.Emit) error                           { return nil }

func mustPath(c *fabric.Cluster, a, b string) []*fabric.Link {
	p, err := c.Path(a, b)
	if err != nil {
		panic(err)
	}
	return p
}

// E4Row is one group-cardinality point of the staged pre-aggregation
// sweep.
type E4Row struct {
	Groups       int64
	RowsIntoCPU  int64 // partial rows the CPU has to merge, full offload
	RowsIntoCPU0 int64 // rows the CPU consumes with no offload
	NetBytesFull sim.Bytes
	NetBytesNone sim.Bytes
}

// E4Result carries the staged pre-aggregation sweep.
type E4Result struct {
	Table *Table
	Rows  []E4Row
	// ChosenLow/ChosenHigh are the variants the optimizer itself picks
	// at the lowest and highest cardinality — it must ride the
	// crossover.
	ChosenLow  string
	ChosenHigh string
}

// E4StagedPreAgg reproduces Section 4.4's staged group-by: partial
// aggregation at storage and on both NICs multiplies the reduction, so
// the CPU merges a stream whose size tracks group cardinality rather
// than table cardinality.
func E4StagedPreAgg(rows int, cardinalities []int64) (*E4Result, error) {
	res := &E4Result{Table: &Table{
		ID:     "E4",
		Title:  "Staged pre-aggregation (Section 4.4): rows reaching the CPU vs group count",
		Header: []string{"groups", "rows->cpu full-offload", "rows->cpu cpu-only", "net full", "net none"},
		Notes:  "pre-aggregation at storage + both NICs; accuracy is exact (partials merge associatively)",
	}}
	netLink := "storage.nic--switch"
	for _, groups := range cardinalities {
		data := workload.GenKV(workload.KVConfig{Rows: rows, Keys: groups, Seed: 11})
		eng := core.NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
		if err := eng.CreateTable("kv", workload.KVSchema()); err != nil {
			return nil, err
		}
		if err := eng.Load("kv", data); err != nil {
			return nil, err
		}
		q := plan.NewQuery("kv").WithGroupBy(workload.KVGroupBy())
		variants, err := eng.Plan(q, 0)
		if err != nil {
			return nil, err
		}
		if groups == cardinalities[0] {
			res.ChosenLow = variants[0].Variant
		}
		if groups == cardinalities[len(cardinalities)-1] {
			res.ChosenHigh = variants[0].Variant
		}
		var full, cpuOnly *plan.Physical
		for _, v := range variants {
			switch v.Variant {
			case "full-offload":
				full = v
			case "cpu-only":
				cpuOnly = v
			}
		}
		if full == nil || cpuOnly == nil {
			return nil, fmt.Errorf("experiments: E4 variants missing")
		}
		fullRes, err := eng.ExecutePlan(context.Background(), full)
		if err != nil {
			return nil, err
		}
		cpuRes, err := eng.ExecutePlan(context.Background(), cpuOnly)
		if err != nil {
			return nil, err
		}
		if fullRes.Rows() != cpuRes.Rows() {
			return nil, fmt.Errorf("experiments: E4 results disagree (%d vs %d groups)", fullRes.Rows(), cpuRes.Rows())
		}
		row := E4Row{
			Groups:       int64(fullRes.Rows()),
			RowsIntoCPU:  cpuRowsConsumed(fullRes),
			RowsIntoCPU0: cpuRowsConsumed(cpuRes),
			NetBytesFull: fullRes.Stats.LinkBytes[netLink],
			NetBytesNone: cpuRes.Stats.LinkBytes[netLink],
		}
		res.Rows = append(res.Rows, row)
		res.Table.AddRow(d(row.Groups), d(row.RowsIntoCPU), d(row.RowsIntoCPU0),
			row.NetBytesFull.String(), row.NetBytesNone.String())
	}
	return res, nil
}

// cpuRowsConsumed derives the rows the compute CPU had to ingest from
// its byte meter (16B per kv row raw; partial rows are wider but far
// fewer). We report bytes/8 as a row-equivalent to stay unit-consistent.
func cpuRowsConsumed(r *core.Result) int64 {
	return int64(r.Stats.CPUBytes) / 16
}

// E5Result carries the distributed-join comparison.
type E5Result struct {
	Table    *Table
	NICMode  netsim.DistJoinResult
	CPUMode  netsim.DistJoinResult
	NICCPUBy sim.Bytes // bytes CPUs touched, NIC scatter
	CPUCPUBy sim.Bytes // bytes CPUs touched, CPU scatter
}

// E5PartitionedJoin reproduces Figure 4: the NIC-executed scattering
// pipeline for a distributed partitioned hash join relieves the CPUs of
// all exchange work.
func E5PartitionedJoin(buildRows, probeRows, nodes int) (*E5Result, error) {
	build := []*columnar.Batch{workload.GenKV(workload.KVConfig{Rows: buildRows, Keys: int64(buildRows), Seed: 3})}
	probe := []*columnar.Batch{workload.GenKV(workload.KVConfig{Rows: probeRows, Keys: int64(buildRows) * 2, Seed: 4})}

	run := func(onNIC bool) (netsim.DistJoinResult, sim.Bytes, error) {
		cfg := netsim.DistJoinConfig{BuildKey: 0, ProbeKey: 0, ScatterOnNIC: onNIC, BatchRows: 1024}
		if onNIC {
			cfg.ScatterDevice = fabric.NewSmartNIC("scatter-nic", sim.GbitPerSec(400))
		} else {
			cfg.ScatterDevice = fabric.NewCPU("scatter-cpu", 8)
		}
		for i := 0; i < nodes; i++ {
			cfg.Nodes = append(cfg.Nodes, netsim.JoinNode{Name: fmt.Sprintf("n%d", i), CPU: fabric.NewCPU("cpu", 8)})
			cfg.Paths = append(cfg.Paths, []*fabric.Link{{
				Name: "eth", A: "sw", B: "n", Bandwidth: sim.GbitPerSec(400), Latency: fabric.RDMALatency,
			}})
		}
		r, err := netsim.DistributedJoin(cfg, build, probe, nil)
		if err != nil {
			return r, 0, err
		}
		cpuBytes := r.CPUBytes
		if !onNIC {
			cpuBytes += r.ScatterBytes // the scatter ran on a CPU
		}
		return r, cpuBytes, nil
	}

	nicRes, nicCPU, err := run(true)
	if err != nil {
		return nil, err
	}
	cpuRes, cpuCPU, err := run(false)
	if err != nil {
		return nil, err
	}
	if nicRes.Rows != cpuRes.Rows {
		return nil, fmt.Errorf("experiments: E5 modes disagree (%d vs %d rows)", nicRes.Rows, cpuRes.Rows)
	}
	t := &Table{
		ID:     "E5",
		Title:  fmt.Sprintf("Distributed partitioned join (Figure 4), %d nodes", nodes),
		Header: []string{"scatter", "joined rows", "cpu bytes", "scatter-device bytes", "probe skew max/min"},
		Notes:  "NIC scatter removes the exchange from the CPUs entirely",
	}
	t.AddRow("nic", d(nicRes.Rows), nicCPU.String(), nicRes.ScatterBytes.String(),
		fmt.Sprintf("%d/%d", nicRes.SkewMax, nicRes.SkewMin))
	t.AddRow("cpu", d(cpuRes.Rows), cpuCPU.String(), cpuRes.ScatterBytes.String(),
		fmt.Sprintf("%d/%d", cpuRes.SkewMax, cpuRes.SkewMin))
	return &E5Result{Table: t, NICMode: nicRes, CPUMode: cpuRes, NICCPUBy: nicCPU, CPUCPUBy: cpuCPU}, nil
}

// E6Result carries the NIC-count measurements.
type E6Result struct {
	Table      *Table
	Count      int64
	SmartNet   sim.Bytes
	SmartHost  sim.Bytes // bytes entering compute-node memory
	LegacyNet  sim.Bytes
	LegacyHost sim.Bytes
}

// E6NICCount reproduces Section 4.4's COUNT example: on the smart fabric
// the count completes at the storage tier and only the 8-byte result
// traverses the network; the legacy fabric hauls the column to the host.
func E6NICCount(rows int) (*E6Result, error) {
	cfg := workload.DefaultLineitemConfig(rows)
	data := workload.GenLineitem(cfg)
	q := plan.NewQuery("lineitem").WithCount()

	run := func(smart bool) (*core.Result, error) {
		ccfg := fabric.DefaultClusterConfig()
		if !smart {
			ccfg = fabric.LegacyClusterConfig()
		}
		eng := core.NewDataFlowEngine(fabric.NewCluster(ccfg))
		if err := eng.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
			return nil, err
		}
		if err := eng.Load("lineitem", data); err != nil {
			return nil, err
		}
		return eng.Execute(context.Background(), q)
	}
	smart, err := run(true)
	if err != nil {
		return nil, err
	}
	legacy, err := run(false)
	if err != nil {
		return nil, err
	}
	sc := smart.Batches[0].Col(0).Int64s()[0]
	lc := legacy.Batches[0].Col(0).Int64s()[0]
	if sc != lc {
		return nil, fmt.Errorf("experiments: E6 counts disagree (%d vs %d)", sc, lc)
	}
	netLink := "storage.nic--switch"
	hostLinkSmart := "compute0.nic--compute0.dram"
	res := &E6Result{
		Table: &Table{
			ID:     "E6",
			Title:  "COUNT(*) on the data path (Section 4.4)",
			Header: []string{"fabric", "count", "network bytes", "host-memory bytes"},
			Notes:  "smart fabric completes the count at storage; only the result crosses the network",
		},
		Count:      sc,
		SmartNet:   smart.Stats.LinkBytes[netLink],
		SmartHost:  smart.Stats.LinkBytes[hostLinkSmart],
		LegacyNet:  legacy.Stats.LinkBytes[netLink],
		LegacyHost: legacy.Stats.LinkBytes[hostLinkSmart],
	}
	res.Table.AddRow("smart", d(sc), res.SmartNet.String(), res.SmartHost.String())
	res.Table.AddRow("legacy", d(lc), res.LegacyNet.String(), res.LegacyHost.String())
	return res, nil
}
