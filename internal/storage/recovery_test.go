package storage

import (
	"context"
	"strings"
	"testing"

	"repro/internal/columnar"
	"repro/internal/faults"
	"repro/internal/sim"
)

// Recovery machinery: replication, retry with backoff, defensive
// copies, and scan-level corrupt re-reads.

func TestGetReturnsDefensiveCopy(t *testing.T) {
	s := NewObjectStore()
	s.Put("k", []byte("hello world!"))
	a, err := s.Get(context.Background(), "k")
	if err != nil {
		t.Fatal(err)
	}
	a[0] = 'X' // caller scribbles on the result
	b, err := s.Get(context.Background(), "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "hello world!" {
		t.Fatalf("stored blob mutated through Get result: %q", b)
	}
	// The metered hot path shares the stored array by contract.
	c, err := s.GetNoCopy(context.Background(), "k")
	if err != nil {
		t.Fatal(err)
	}
	d, err := s.GetNoCopy(context.Background(), "k")
	if err != nil {
		t.Fatal(err)
	}
	if &c[0] != &d[0] {
		t.Error("GetNoCopy copied the blob")
	}
}

func TestPutDeleteMetering(t *testing.T) {
	s := NewObjectStore()
	s.SetReplicas(3)
	s.Put("k", make([]byte, 100))
	if ops, bytes := s.Meter.Ops(), s.Meter.Bytes(); ops != 1 || bytes != 300 {
		t.Fatalf("after Put: ops=%d bytes=%d, want 1 op and 300 replicated bytes", ops, bytes)
	}
	before := s.Meter.Bytes()
	s.Delete("k")
	if ops, bytes := s.Meter.Ops(), s.Meter.Bytes(); ops != 2 || bytes != before {
		t.Fatalf("after Delete: ops=%d bytes=%d, want one op and no byte charge", ops, bytes)
	}
	if s.NumObjects() != 0 {
		t.Fatal("Delete left replicas behind")
	}
}

func TestReplicationCapacityAccounting(t *testing.T) {
	s := NewObjectStore()
	s.SetReplicas(2)
	s.Put("a", make([]byte, 10))
	s.Put("b", make([]byte, 5))
	if got := s.TotalBytes(); got != 30 {
		t.Fatalf("TotalBytes = %d, want 30 (replicas included)", got)
	}
	if got := s.NumObjects(); got != 2 {
		t.Fatalf("NumObjects = %d, want 2 (keys counted once)", got)
	}
	if got := s.Size("a"); got != 10 {
		t.Fatalf("Size = %d, want the single-copy size 10", got)
	}
}

func TestTransientFaultRetries(t *testing.T) {
	s := NewObjectStore()
	s.RetryBase = 0 // no real sleeping in tests
	s.Faults = faults.New(42)
	s.Faults.Arm(faults.Point{Kind: faults.TransientRead, Prob: 1, Budget: 2})
	s.Put("k", []byte("payload"))
	got, err := s.Get(context.Background(), "k")
	if err != nil {
		t.Fatalf("Get did not recover from transient faults: %v", err)
	}
	if string(got) != "payload" {
		t.Fatalf("recovered read returned %q", got)
	}
	rec := s.Recovery()
	if rec.Retries != 2 {
		t.Errorf("Retries = %d, want 2", rec.Retries)
	}
	if rec.RetryBytes != sim.Bytes(len("payload")) {
		t.Errorf("RetryBytes = %d, want %d", rec.RetryBytes, len("payload"))
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	s := NewObjectStore()
	s.RetryBase = 0
	s.MaxRetries = 1
	s.Faults = faults.New(42)
	s.Faults.Arm(faults.Point{Kind: faults.TransientRead, Prob: 1})
	s.Put("k", []byte("x"))
	_, err := s.Get(context.Background(), "k")
	if err == nil {
		t.Fatal("Get succeeded through an always-firing fault")
	}
	if !faults.IsTransient(err) {
		t.Fatalf("exhausted retries surfaced non-transient error %v", err)
	}
}

func TestReplicaFallbackOnMissing(t *testing.T) {
	s := NewObjectStore()
	s.RetryBase = 0
	s.SetReplicas(2)
	s.Faults = faults.New(7)
	// The first replica read reports the object missing; the second
	// replica must serve, with no same-replica retry wasted on it.
	s.Faults.Arm(faults.Point{Kind: faults.ObjectMissing, Prob: 1, Budget: 1})
	s.Put("k", []byte("survives"))
	got, err := s.Get(context.Background(), "k")
	if err != nil {
		t.Fatalf("replicated Get failed: %v", err)
	}
	if string(got) != "survives" {
		t.Fatalf("fallback read returned %q", got)
	}
	rec := s.Recovery()
	if rec.ReplicaFallbacks != 1 {
		t.Errorf("ReplicaFallbacks = %d, want 1", rec.ReplicaFallbacks)
	}
	if rec.Retries != 0 {
		t.Errorf("Retries = %d, want 0 (missing replicas are not retried in place)", rec.Retries)
	}
}

func TestMissingKeyIsPermanent(t *testing.T) {
	s := NewObjectStore()
	s.Faults = faults.New(1)
	s.Faults.Arm(faults.Point{Kind: faults.TransientRead, Prob: 1})
	_, err := s.Get(context.Background(), "absent")
	if err == nil || !strings.Contains(err.Error(), "not found") {
		t.Fatalf("err = %v, want not-found", err)
	}
	if faults.IsTransient(err) {
		t.Error("genuinely absent key classified transient")
	}
	if rec := s.Recovery(); rec.Retries != 0 {
		t.Errorf("absent key burned %d retries", rec.Retries)
	}
}

func TestScanRetriesCorruptRead(t *testing.T) {
	srv := newTestServer(t, true)
	srv.Store().RetryBase = 0
	loadTable(t, srv, 3000) // 3 segments
	inj := faults.New(99)
	// Two reads return corrupted bytes; checksum catches each and the
	// scan re-reads. The stored blob is clean, so retries succeed.
	inj.Arm(faults.Point{Kind: faults.CorruptBlob, Prob: 1, Budget: 2})
	srv.Store().Faults = inj
	var rows int64
	stats, err := srv.Scan(context.Background(), "lineitem", ScanSpec{}, func(b *columnar.Batch) error {
		rows += int64(b.NumRows())
		return nil
	})
	if err != nil {
		t.Fatalf("scan did not recover from corrupt reads: %v", err)
	}
	if rows != 3000 {
		t.Fatalf("recovered scan returned %d rows, want 3000", rows)
	}
	if stats.Retries != 2 {
		t.Errorf("stats.Retries = %d, want 2", stats.Retries)
	}
	if stats.RetryBytes <= 0 {
		t.Error("corrupt re-reads reported no RetryBytes")
	}
}

func TestScanFailsOnPersistentCorruption(t *testing.T) {
	srv := newTestServer(t, true)
	srv.Store().RetryBase = 0
	loadTable(t, srv, 1000)
	meta, err := srv.Table("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	key := meta.SegmentKeys[0]
	blob, err := srv.Store().Get(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x01 // Get copies, so corrupt and write back
	srv.Store().Put(key, blob)
	emitted := 0
	_, err = srv.Scan(context.Background(), "lineitem", ScanSpec{}, func(*columnar.Batch) error {
		emitted++
		return nil
	})
	if err == nil {
		t.Fatal("scan over persistently corrupt segment succeeded")
	}
	if !strings.Contains(err.Error(), "corrupt") && !strings.Contains(err.Error(), "checksum") {
		t.Errorf("err = %v, want corruption mention", err)
	}
}
