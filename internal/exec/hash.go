// Package exec implements the engine's operators in both execution
// models the paper contrasts: push-based streaming stages that can be
// placed on any device along the data path (storage processors, NICs,
// near-memory accelerators, CPUs), and pull-based Volcano iterators
// (Section 1's "pull-based Volcano model") that form the CPU-centric
// baseline.
package exec

import (
	"math/bits"

	"repro/internal/columnar"
)

// hashSeed decorrelates hash uses (partitioning vs join) so that
// partition-by-key followed by hash-join-by-key does not degenerate.
type hashSeed uint64

// Hash seeds for the engine's two distinct uses.
const (
	SeedPartition hashSeed = 0x9E3779B97F4A7C15
	SeedJoin      hashSeed = 0xC2B2AE3D27D4EB4F
)

// mix64 is the splitmix64 finalizer, a strong cheap mixer for 64-bit
// values.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// hashString is FNV-1a over the string bytes followed by an avalanche.
func hashString(s string, seed hashSeed) uint64 {
	h := uint64(14695981039346656037) ^ uint64(seed)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// HashValue hashes one value of a key column with the given seed. NULLs
// hash to a fixed bucket.
func HashValue(col *columnar.Vector, row int, seed hashSeed) uint64 {
	if col.IsNull(row) {
		return mix64(uint64(seed) ^ 0xDEAD)
	}
	switch col.Type() {
	case columnar.Int64:
		return mix64(uint64(col.Int64s()[row]) ^ uint64(seed))
	case columnar.Float64:
		return mix64(uint64(int64(col.Float64s()[row]*1024)) ^ uint64(seed))
	case columnar.String:
		return hashString(col.Strings()[row], seed)
	case columnar.Bool:
		v := uint64(0)
		if col.Bools()[row] {
			v = 1
		}
		return mix64(v ^ uint64(seed))
	}
	return 0
}

// HashColumn hashes every row of a key column into dst (resized as
// needed) and returns it.
func HashColumn(col *columnar.Vector, seed hashSeed, dst []uint64) []uint64 {
	n := col.Len()
	if cap(dst) < n {
		dst = make([]uint64, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		dst[i] = HashValue(col, i, seed)
	}
	return dst
}

// PartitionOf maps a hash to one of n partitions using the fast-range
// reduction (unbiased for n ≪ 2^32, unlike modulo of a power of two).
func PartitionOf(h uint64, n int) int {
	hi, _ := bits.Mul64(h, uint64(n))
	return int(hi)
}
