package expr

import (
	"testing"
	"testing/quick"

	"repro/internal/columnar"
	"repro/internal/sim"
)

func salesSchema() *columnar.Schema {
	return columnar.NewSchema(
		columnar.Field{Name: "region", Type: columnar.String},
		columnar.Field{Name: "amount", Type: columnar.Int64},
	)
}

func salesBatch(regions []string, amounts []int64) *columnar.Batch {
	return columnar.BatchOf(salesSchema(),
		columnar.FromStrings(regions),
		columnar.FromInt64s(amounts))
}

func salesSpec() GroupBy {
	return GroupBy{
		GroupCols: []int{0},
		Aggs: []AggSpec{
			{Func: Count},
			{Func: Sum, Col: 1},
			{Func: Min, Col: 1},
			{Func: Max, Col: 1},
			{Func: Avg, Col: 1},
		},
	}
}

func resultByGroup(t *testing.T, b *columnar.Batch) map[string][]columnar.Value {
	t.Helper()
	out := make(map[string][]columnar.Value)
	for i := 0; i < b.NumRows(); i++ {
		row := b.Row(i)
		out[row[0].S] = row[1:]
	}
	return out
}

func TestFinalAggregatorRaw(t *testing.T) {
	f := NewFinalAggregator(salesSpec(), salesSchema())
	f.AddRaw(salesBatch(
		[]string{"eu", "us", "eu", "us", "eu"},
		[]int64{10, 20, 30, 40, 50}))
	res := f.Result()
	if res.NumRows() != 2 {
		t.Fatalf("groups = %d, want 2", res.NumRows())
	}
	by := resultByGroup(t, res)
	eu := by["eu"]
	if eu[0].I != 3 || eu[1].I != 90 || eu[2].I != 10 || eu[3].I != 50 || eu[4].F != 30 {
		t.Errorf("eu aggregates = %v", eu)
	}
	us := by["us"]
	if us[0].I != 2 || us[1].I != 60 {
		t.Errorf("us aggregates = %v", us)
	}
}

func TestPartialThenFinalMatchesDirect(t *testing.T) {
	regions := []string{"a", "b", "c", "a", "b", "a", "c", "c", "c", "b"}
	amounts := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}

	direct := NewFinalAggregator(salesSpec(), salesSchema())
	direct.AddRaw(salesBatch(regions, amounts))

	// Two-stage: partial at "storage", final at "compute".
	pa := NewPartialAggregator(salesSpec(), salesSchema(), 0)
	pa.AddRaw(salesBatch(regions[:5], amounts[:5]))
	first := pa.Flush()
	pa.AddRaw(salesBatch(regions[5:], amounts[5:]))
	second := pa.Flush()

	final := NewFinalAggregator(salesSpec(), salesSchema())
	final.AddPartial(first)
	final.AddPartial(second)

	want := resultByGroup(t, direct.Result())
	got := resultByGroup(t, final.Result())
	if len(got) != len(want) {
		t.Fatalf("group count %d != %d", len(got), len(want))
	}
	for k, w := range want {
		g := got[k]
		for i := range w {
			if !g[i].Equal(w[i]) {
				t.Errorf("group %s agg %d: %v != %v", k, i, g[i], w[i])
			}
		}
	}
}

func TestThreeStagePipelineMatchesDirect(t *testing.T) {
	// storage -> sending NIC -> receiving NIC -> CPU, all chained on the
	// partial schema (Section 4.4's staged group-by).
	const n = 1000
	rng := sim.NewRNG(3)
	regions := make([]string, n)
	amounts := make([]int64, n)
	names := []string{"r0", "r1", "r2", "r3", "r4", "r5", "r6", "r7"}
	for i := range regions {
		regions[i] = names[rng.Intn(len(names))]
		amounts[i] = int64(rng.Intn(100)) - 50
	}
	direct := NewFinalAggregator(salesSpec(), salesSchema())
	direct.AddRaw(salesBatch(regions, amounts))

	stage1 := NewPartialAggregator(salesSpec(), salesSchema(), 4) // tiny budgets force spills
	stage2 := NewPartialAggregator(salesSpec(), salesSchema(), 6)
	stage3 := NewPartialAggregator(salesSpec(), salesSchema(), 0)
	final := NewFinalAggregator(salesSpec(), salesSchema())

	feed2 := func(b *columnar.Batch) {
		for _, spill := range stage2.AddPartial(b) {
			stage3.AddPartial(spill)
		}
	}
	for i := 0; i < n; i += 100 {
		chunk := salesBatch(regions[i:i+100], amounts[i:i+100])
		for _, spill := range stage1.AddRaw(chunk) {
			feed2(spill)
		}
	}
	if b := stage1.Flush(); b != nil {
		feed2(b)
	}
	if b := stage2.Flush(); b != nil {
		stage3.AddPartial(b)
	}
	if b := stage3.Flush(); b != nil {
		final.AddPartial(b)
	}

	want := resultByGroup(t, direct.Result())
	got := resultByGroup(t, final.Result())
	if len(got) != len(want) {
		t.Fatalf("group count %d != %d", len(got), len(want))
	}
	for k, w := range want {
		for i := range w {
			if !got[k][i].Equal(w[i]) {
				t.Errorf("group %s agg %d: %v != %v", k, i, got[k][i], w[i])
			}
		}
	}
}

func TestPartialAggregatorBudgetSpills(t *testing.T) {
	pa := NewPartialAggregator(salesSpec(), salesSchema(), 2)
	spills := pa.AddRaw(salesBatch(
		[]string{"a", "b", "c", "d"},
		[]int64{1, 2, 3, 4}))
	if len(spills) == 0 {
		t.Fatal("budget of 2 with 4 groups produced no spills")
	}
	if pa.NumGroups() > 2 {
		t.Errorf("held groups = %d, exceeds budget 2", pa.NumGroups())
	}
	var total int64
	for _, s := range spills {
		for i := 0; i < s.NumRows(); i++ {
			total += s.Col(1).Int64s()[i] // a0_cnt column
		}
	}
	if rest := pa.Flush(); rest != nil {
		for i := 0; i < rest.NumRows(); i++ {
			total += rest.Col(1).Int64s()[i]
		}
	}
	if total != 4 {
		t.Errorf("total count across spills+flush = %d, want 4", total)
	}
}

func TestPartialSchemaShape(t *testing.T) {
	ps := PartialSchema(salesSpec(), salesSchema())
	// 1 group col + 5 aggs * 7 state cols.
	if ps.NumFields() != 1+5*7 {
		t.Fatalf("partial schema fields = %d, want 36", ps.NumFields())
	}
	if ps.Fields[0].Name != "region" {
		t.Error("group column not first")
	}
	if ps.Fields[1].Name != "a0_cnt" || ps.Fields[1].Type != columnar.Int64 {
		t.Error("state column layout wrong")
	}
}

func TestScalarAggregationNoGroups(t *testing.T) {
	spec := GroupBy{Aggs: []AggSpec{{Func: Count}, {Func: Sum, Col: 1}}}
	f := NewFinalAggregator(spec, salesSchema())
	f.AddRaw(salesBatch([]string{"x", "y"}, []int64{7, 8}))
	res := f.Result()
	if res.NumRows() != 1 {
		t.Fatalf("scalar agg rows = %d, want 1", res.NumRows())
	}
	if res.Col(0).Int64s()[0] != 2 || res.Col(1).Int64s()[0] != 15 {
		t.Errorf("scalar agg = %v", res.Row(0))
	}
}

func TestGroupKeyNoCollisions(t *testing.T) {
	// Adversarial: string values that would collide under naive joining.
	schema := columnar.NewSchema(
		columnar.Field{Name: "a", Type: columnar.String},
		columnar.Field{Name: "b", Type: columnar.String},
	)
	spec := GroupBy{GroupCols: []int{0, 1}, Aggs: []AggSpec{{Func: Count}}}
	b := columnar.NewBatch(schema, 4)
	b.AppendRow(columnar.StringValue("x|"), columnar.StringValue("y"))
	b.AppendRow(columnar.StringValue("x"), columnar.StringValue("|y"))
	b.AppendRow(columnar.StringValue("x"), columnar.NullValue(columnar.String))
	b.AppendRow(columnar.StringValue("x"), columnar.StringValue(""))
	f := NewFinalAggregator(spec, schema)
	f.AddRaw(b)
	if f.NumGroups() != 4 {
		t.Errorf("groups = %d, want 4 (key collisions?)", f.NumGroups())
	}
}

func TestGroupByRebase(t *testing.T) {
	g := GroupBy{GroupCols: []int{5}, Aggs: []AggSpec{{Func: Count}, {Func: Sum, Col: 7}}}
	r := g.Rebase(func(i int) int { return i - 5 })
	if r.GroupCols[0] != 0 || r.Aggs[1].Col != 2 {
		t.Errorf("Rebase gave %+v", r)
	}
	// Count's column is untouched (it is ignored anyway).
	if r.Aggs[0].Func != Count {
		t.Error("Count spec lost")
	}
}

func TestPredicateRebase(t *testing.T) {
	p := NewAnd(
		NewCmp(3, Gt, columnar.IntValue(10)),
		NewOr(NewBetween(4, 1, 2), NewNot(NewLike(5, "x"))),
	)
	r := Rebase(p, func(i int) int { return i - 3 })
	cols := r.Columns()
	if !equalInts(cols, []int{0, 1, 2}) {
		t.Errorf("rebased columns = %v, want [0 1 2]", cols)
	}
	// Original untouched.
	if !equalInts(p.Columns(), []int{3, 4, 5}) {
		t.Error("Rebase mutated the original predicate")
	}
}

// Property: merging partials computed over any split of the input equals
// aggregating the whole input directly.
func TestPartialSplitProperty(t *testing.T) {
	f := func(amounts []int8, cut uint8) bool {
		if len(amounts) == 0 {
			return true
		}
		regions := make([]string, len(amounts))
		vals := make([]int64, len(amounts))
		for i, a := range amounts {
			regions[i] = []string{"p", "q", "r"}[int(uint8(a))%3]
			vals[i] = int64(a)
		}
		k := int(cut) % len(amounts)

		direct := NewFinalAggregator(salesSpec(), salesSchema())
		direct.AddRaw(salesBatch(regions, vals))

		pa := NewPartialAggregator(salesSpec(), salesSchema(), 0)
		pa.AddRaw(salesBatch(regions[:k], vals[:k]))
		b1 := pa.Flush()
		pa.AddRaw(salesBatch(regions[k:], vals[k:]))
		b2 := pa.Flush()
		final := NewFinalAggregator(salesSpec(), salesSchema())
		if b1 != nil {
			final.AddPartial(b1)
		}
		if b2 != nil {
			final.AddPartial(b2)
		}

		w := direct.Result()
		g := final.Result()
		if w.NumRows() != g.NumRows() {
			return false
		}
		for i := 0; i < w.NumRows(); i++ {
			for c := 0; c < w.NumCols(); c++ {
				if !w.Col(c).Value(i).Equal(g.Col(c).Value(i)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
