package encoding

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/columnar"
)

func TestDeltaVarintRoundTrip(t *testing.T) {
	cases := [][]int64{
		nil,
		{},
		{0},
		{1, 2, 3, 4, 5},
		{-5, 1000, -3, math.MaxInt64, math.MinInt64, 0},
		{100, 100, 100},
	}
	for _, vals := range cases {
		enc := EncodeDeltaVarint(vals)
		got, err := DecodeDeltaVarint(enc)
		if err != nil {
			t.Fatalf("decode(%v): %v", vals, err)
		}
		if len(got) != len(vals) {
			t.Fatalf("len = %d, want %d", len(got), len(vals))
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("round trip %v gave %v", vals, got)
			}
		}
	}
}

func TestDeltaVarintShrinksSorted(t *testing.T) {
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = int64(1_000_000 + i)
	}
	enc := EncodeDeltaVarint(vals)
	if len(enc) > len(vals)*2 {
		t.Errorf("sorted delta encoding is %d bytes for %d values; want <= 2B/value", len(enc), len(vals))
	}
}

func TestRLERoundTrip(t *testing.T) {
	cases := [][]int64{
		{},
		{7},
		{1, 1, 1, 2, 2, 3},
		{5, 4, 3, 2, 1},
		{-1, -1, math.MinInt64, math.MinInt64},
	}
	for _, vals := range cases {
		got, err := DecodeRLEInt64(EncodeRLEInt64(vals))
		if err != nil {
			t.Fatalf("decode(%v): %v", vals, err)
		}
		if !reflect.DeepEqual(got, append([]int64{}, vals...)) {
			t.Fatalf("round trip %v gave %v", vals, got)
		}
	}
}

func TestRLEShrinksConstant(t *testing.T) {
	vals := make([]int64, 100000)
	enc := EncodeRLEInt64(vals)
	if len(enc) > 32 {
		t.Errorf("constant column RLE = %d bytes, want tiny", len(enc))
	}
}

func TestBitPackedRoundTrip(t *testing.T) {
	cases := [][]int64{
		{},
		{42},
		{42, 42, 42},
		{0, 1, 2, 3, 4, 5, 6, 7},
		{-100, 100, 0, 55},
		{math.MinInt64, math.MaxInt64}, // width 64 edge case... range overflows; see below
	}
	for i, vals := range cases {
		if i == len(cases)-1 {
			// max-min overflows int64; the encoder's width computation
			// uses uint64 so this still round-trips.
			_ = vals
		}
		got, err := DecodeBitPacked(EncodeBitPacked(vals))
		if err != nil {
			t.Fatalf("decode(%v): %v", vals, err)
		}
		if len(got) != len(vals) {
			t.Fatalf("len mismatch for %v", vals)
		}
		for j := range vals {
			if got[j] != vals[j] {
				t.Fatalf("round trip %v gave %v", vals, got)
			}
		}
	}
}

func TestBitPackedProperty(t *testing.T) {
	f := func(vals []int64) bool {
		got, err := DecodeBitPacked(EncodeBitPacked(vals))
		if err != nil || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitPackedNarrowDomain(t *testing.T) {
	// 100k values in [0,16): 4 bits each ≈ 50 KB.
	vals := make([]int64, 100000)
	for i := range vals {
		vals[i] = int64(i % 16)
	}
	enc := EncodeBitPacked(vals)
	if len(enc) > 51000 {
		t.Errorf("4-bit domain packed to %d bytes, want ~50000", len(enc))
	}
}

func TestFloatBoolRoundTrip(t *testing.T) {
	fv := []float64{0, -1.5, math.Pi, math.Inf(1), math.SmallestNonzeroFloat64}
	gotF, err := DecodeFloat64s(EncodeFloat64s(fv))
	if err != nil || !reflect.DeepEqual(gotF, fv) {
		t.Fatalf("float round trip gave %v, err %v", gotF, err)
	}
	bv := []bool{true, false, true, true, false, false, true, false, true}
	gotB, err := DecodeBools(EncodeBools(bv))
	if err != nil || !reflect.DeepEqual(gotB, bv) {
		t.Fatalf("bool round trip gave %v, err %v", gotB, err)
	}
}

func TestDictRoundTrip(t *testing.T) {
	cases := [][]string{
		{},
		{"a"},
		{"us", "de", "us", "us", "ch", "de"},
		{"", "", "x"},
	}
	for _, vals := range cases {
		got, err := DecodeDict(EncodeDict(vals))
		if err != nil {
			t.Fatalf("decode(%v): %v", vals, err)
		}
		if len(got) != len(vals) {
			t.Fatalf("len mismatch for %v", vals)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("round trip %v gave %v", vals, got)
			}
		}
	}
}

func TestDictShrinksLowCardinality(t *testing.T) {
	vals := make([]string, 10000)
	countries := []string{"switzerland", "germany", "france", "italy"}
	for i := range vals {
		vals[i] = countries[i%len(countries)]
	}
	dict := EncodeDict(vals)
	plain := EncodePlainStrings(vals)
	if len(dict) >= len(plain)/10 {
		t.Errorf("dict = %d bytes vs plain = %d; want >=10x smaller", len(dict), len(plain))
	}
}

func TestPlainStringsRoundTrip(t *testing.T) {
	vals := []string{"hello", "", "world", "日本語"}
	got, err := DecodePlainStrings(EncodePlainStrings(vals))
	if err != nil || !reflect.DeepEqual(got, vals) {
		t.Fatalf("round trip gave %v, err %v", got, err)
	}
}

func TestLZRoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("a"),
		[]byte("abcabcabcabcabcabc"),
		[]byte("the quick brown fox jumps over the lazy dog"),
		bytes.Repeat([]byte{0}, 10000),
		bytes.Repeat([]byte("0123456789abcdef"), 100),
	}
	for _, data := range cases {
		got, err := DecompressLZ(CompressLZ(data))
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip changed data (len %d -> %d)", len(data), len(got))
		}
	}
}

func TestLZOverlappingMatch(t *testing.T) {
	// "aaaa..." forces matches that overlap their own output.
	data := bytes.Repeat([]byte("a"), 1000)
	comp := CompressLZ(data)
	if len(comp) > 50 {
		t.Errorf("1000 'a's compressed to %d bytes, want tiny", len(comp))
	}
	got, err := DecompressLZ(comp)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("overlapping match round trip failed: %v", err)
	}
}

func TestLZProperty(t *testing.T) {
	f := func(data []byte) bool {
		got, err := DecompressLZ(CompressLZ(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLZRejectsCorrupt(t *testing.T) {
	comp := CompressLZ([]byte("hello world hello world hello world"))
	for i := 1; i < len(comp); i++ {
		_, err := DecompressLZ(comp[:i])
		if err == nil {
			// Truncation may still decode if it lands exactly after the
			// declared size — but our size header prevents that.
			t.Fatalf("truncated stream at %d decoded without error", i)
		}
	}
}

func makeVec(t *testing.T, typ columnar.Type, n int) *columnar.Vector {
	t.Helper()
	v := columnar.NewVector(typ, n)
	for i := 0; i < n; i++ {
		switch typ {
		case columnar.Int64:
			v.AppendInt64(int64(i % 100))
		case columnar.Float64:
			v.AppendFloat64(float64(i) * 1.5)
		case columnar.String:
			v.AppendString([]string{"red", "green", "blue"}[i%3])
		case columnar.Bool:
			v.AppendBool(i%2 == 0)
		}
	}
	return v
}

func TestEncodeColumnRoundTripAllTypes(t *testing.T) {
	for _, typ := range []columnar.Type{columnar.Int64, columnar.Float64, columnar.String, columnar.Bool} {
		t.Run(typ.String(), func(t *testing.T) {
			v := makeVec(t, typ, 500)
			ec := EncodeColumn(v)
			back, err := ec.Decode()
			if err != nil {
				t.Fatal(err)
			}
			if back.Len() != v.Len() {
				t.Fatalf("len = %d, want %d", back.Len(), v.Len())
			}
			for i := 0; i < v.Len(); i++ {
				if !back.Value(i).Equal(v.Value(i)) {
					t.Fatalf("value %d differs: %v vs %v", i, back.Value(i), v.Value(i))
				}
			}
		})
	}
}

func TestEncodeColumnWithNulls(t *testing.T) {
	v := columnar.NewVector(columnar.Int64, 10)
	for i := 0; i < 10; i++ {
		if i%3 == 0 {
			v.AppendNull()
		} else {
			v.AppendInt64(int64(i))
		}
	}
	ec := EncodeColumn(v)
	if ec.Stats.NullCount != 4 {
		t.Errorf("NullCount = %d, want 4", ec.Stats.NullCount)
	}
	back, err := ec.Decode()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if back.IsNull(i) != v.IsNull(i) {
			t.Fatalf("null bit %d differs", i)
		}
		if !back.Value(i).Equal(v.Value(i)) {
			t.Fatalf("value %d differs", i)
		}
	}
}

func TestEncodeColumnStats(t *testing.T) {
	v := columnar.FromInt64s([]int64{5, -3, 12, 7})
	ec := EncodeColumn(v)
	if !ec.Stats.HasMinMax || ec.Stats.MinI != -3 || ec.Stats.MaxI != 12 {
		t.Errorf("int stats = %+v", ec.Stats)
	}
	if !ec.Stats.OverlapsInt(0, 1) {
		t.Error("OverlapsInt(0,1) = false, range [-3,12] overlaps")
	}
	if ec.Stats.OverlapsInt(13, 20) {
		t.Error("OverlapsInt(13,20) = true, range [-3,12] does not overlap")
	}
	if ec.Stats.OverlapsInt(-10, -4) {
		t.Error("OverlapsInt(-10,-4) = true, want false")
	}

	fv := columnar.FromFloat64s([]float64{1.5, 9.5})
	fec := EncodeColumn(fv)
	if !fec.Stats.OverlapsFloat(9.0, 10.0) || fec.Stats.OverlapsFloat(10.0, 11.0) {
		t.Errorf("float overlap logic wrong: %+v", fec.Stats)
	}
}

func TestChecksumDetectsBitFlip(t *testing.T) {
	v := makeVec(t, columnar.Int64, 100)
	ec := EncodeColumn(v)
	ec.Data[len(ec.Data)/2] ^= 0x40
	if _, err := ec.Decode(); err == nil {
		t.Fatal("Decode accepted corrupted data")
	}
}

func TestColumnMarshalRoundTrip(t *testing.T) {
	for _, typ := range []columnar.Type{columnar.Int64, columnar.Float64, columnar.String, columnar.Bool} {
		v := makeVec(t, typ, 200)
		ec := EncodeColumn(v)
		blob := ec.Marshal()
		// Append trailing garbage to confirm consumed-length accuracy.
		blob = append(blob, 0xAA, 0xBB)
		back, n, err := UnmarshalColumn(blob)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(blob)-2 {
			t.Fatalf("consumed %d, want %d", n, len(blob)-2)
		}
		if back.Type != ec.Type || back.Encoding != ec.Encoding || back.Checksum != ec.Checksum {
			t.Fatalf("header mismatch: %+v vs %+v", back, ec)
		}
		if back.Stats != ec.Stats {
			t.Fatalf("stats mismatch: %+v vs %+v", back.Stats, ec.Stats)
		}
		dec, err := back.Decode()
		if err != nil {
			t.Fatal(err)
		}
		if dec.Len() != v.Len() {
			t.Fatalf("decoded len %d, want %d", dec.Len(), v.Len())
		}
	}
}

func TestUnmarshalColumnRejectsTruncation(t *testing.T) {
	v := makeVec(t, columnar.String, 50)
	blob := EncodeColumn(v).Marshal()
	for i := 0; i < len(blob)-1; i += 7 {
		if _, _, err := UnmarshalColumn(blob[:i]); err == nil {
			t.Fatalf("truncated blob at %d unmarshalled without error", i)
		}
	}
}

func TestEncodedSizeReflectsCompression(t *testing.T) {
	// A constant column should encode far smaller than its raw size.
	v := columnar.FromInt64s(make([]int64, 10000))
	ec := EncodeColumn(v)
	if ec.EncodedSize() > 100 {
		t.Errorf("constant column EncodedSize = %d, want tiny", ec.EncodedSize())
	}
	if ec.Encoding != RLE && ec.Encoding != BitPacked {
		t.Errorf("constant column chose %v", ec.Encoding)
	}
}
