// Package obs is the observability layer: a lock-cheap virtual-time
// trace recorder for query executions. Every span lives on a track (one
// device or link of the fabric) and carries virtual-nanosecond start/end
// timestamps, so a trace is a per-device Gantt chart of where busy time
// landed — the behavioural shape the paper's figures argue about, not
// just the end-of-query aggregates in ExecStats.
//
// Design rules:
//
//   - Nil is off. Every method is safe on a nil *Trace and does nothing,
//     so instrumented code needs no flag checks and pays nothing (zero
//     allocations, guarded by benchmarks in flow) when tracing is
//     disabled.
//   - Virtual time only. Timestamps derive from the same calibrated
//     device and link rates the meters charge, never from the host
//     clock, so a fixed-seed run produces a byte-identical trace on any
//     machine — CI diffs traces to prove it.
//   - Tracks serialize. Two spans on the same track never overlap; a
//     device is one resource. (Link tracks are the one exception: a link
//     is a pipelined conduit whose DMA transfers may overlap in flight.)
//     Overlap across tracks is the signal: the concurrency factor is
//     busy-sum divided by makespan over all spans — the mean number of
//     simultaneously active resources, transfer engines included.
//   - Recording is goroutine-safe, replay order is not. AddSpan,
//     AddEvent and Sample serialize on an internal mutex, so concurrent
//     stages may record freely; but append order then depends on the
//     host scheduler, which would break CI's byte-identical trace diff.
//     That is why the engines force Workers to 1 whenever Tracing is on:
//     a traced run is a serial run by contract, and the worker pools
//     must never write spans from more than one goroutine per track.
package obs

import (
	"sort"
	"sync"

	"repro/internal/sim"
)

// SpanKind classifies what a span's busy time was spent on.
type SpanKind uint8

// Span kinds.
const (
	// SpanStage is operator work hosted on a device (a pipeline stage,
	// a Volcano iterator, a pushed-down operator).
	SpanStage SpanKind = iota
	// SpanScan is storage-side media and decode work feeding a query.
	SpanScan
	// SpanTransfer is payload crossing one fabric link.
	SpanTransfer
	// SpanSetup is a kernel installation / register programming step.
	SpanSetup
)

// String names the kind (also the Perfetto category).
func (k SpanKind) String() string {
	switch k {
	case SpanStage:
		return "stage"
	case SpanScan:
		return "scan"
	case SpanTransfer:
		return "transfer"
	case SpanSetup:
		return "setup"
	}
	return "span"
}

// Span is one interval of busy time on one track.
type Span struct {
	Name  string    `json:"name"`
	Track string    `json:"track"`
	Kind  SpanKind  `json:"kind"`
	Start sim.VTime `json:"start"`
	End   sim.VTime `json:"end"`
	Seq   int64     `json:"seq"`   // batch/segment sequence, -1 when n/a
	Bytes sim.Bytes `json:"bytes"` // payload the span touched
}

// Duration reports the span's busy time.
func (s Span) Duration() sim.VTime { return s.End - s.Start }

// Event is an instantaneous annotation: a fault, a retry, a credit
// stall, a failover, a placement decision.
type Event struct {
	Name   string    `json:"name"`
	Track  string    `json:"track"`
	At     sim.VTime `json:"at"`
	Detail string    `json:"detail,omitempty"`
}

// Point is one sample of a metric series.
type Point struct {
	At    sim.VTime `json:"at"`
	Value float64   `json:"value"`
}

// Series is a named metric sampled over the query lifecycle (e.g. one
// meter's cumulative bytes, a port's arrived payload).
type Series struct {
	Name   string  `json:"name"`
	Unit   string  `json:"unit"`
	Points []Point `json:"points"`
}

// Trace is the recorder. The zero value is unusable; use New. A nil
// *Trace is the disabled recorder: every method no-ops.
type Trace struct {
	mu     sync.Mutex
	spans  []Span
	events []Event
	series map[string]*Series
}

// New returns an empty, enabled trace.
func New() *Trace {
	return &Trace{series: make(map[string]*Series)}
}

// Enabled reports whether the recorder collects anything.
func (t *Trace) Enabled() bool { return t != nil }

// AddSpan records one span.
func (t *Trace) AddSpan(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// AddEvent records one instantaneous event.
func (t *Trace) AddEvent(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Sample appends one point to the named series, creating it on first
// use. Points are kept in append order; callers sample monotonically.
func (t *Trace) Sample(name, unit string, at sim.VTime, v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	s, ok := t.series[name]
	if !ok {
		s = &Series{Name: name, Unit: unit}
		t.series[name] = s
	}
	s.Points = append(s.Points, Point{At: at, Value: v})
	t.mu.Unlock()
}

// ClearSpans drops all spans and series but keeps events. The engine's
// failover path uses it between recovery attempts: the final answer's
// timeline replaces the abandoned attempt's, while fault and failover
// annotations accumulate across the whole query.
func (t *Trace) ClearSpans() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = t.spans[:0]
	t.series = make(map[string]*Series)
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in deterministic order
// (start, track, name, seq).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Seq < b.Seq
	})
	return out
}

// Events returns a copy of the recorded events in deterministic order
// (at, track, name).
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Track != b.Track {
			return a.Track < b.Track
		}
		return a.Name < b.Name
	})
	return out
}

// SeriesList returns a copy of the metric series sorted by name.
func (t *Trace) SeriesList() []Series {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Series, 0, len(t.series))
	for _, s := range t.series {
		cp := Series{Name: s.Name, Unit: s.Unit, Points: make([]Point, len(s.Points))}
		copy(cp.Points, s.Points)
		out = append(out, cp)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Tracks returns the distinct track names across spans, sorted.
func (t *Trace) Tracks() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	seen := make(map[string]bool)
	for _, s := range t.spans {
		seen[s.Track] = true
	}
	t.mu.Unlock()
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Makespan reports the latest span end (the query's virtual runtime on
// the traced timeline). Zero with no spans.
func (t *Trace) Makespan() sim.VTime {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var end sim.VTime
	for _, s := range t.spans {
		if s.End > end {
			end = s.End
		}
	}
	return end
}

// WorkBusy sums the durations of every span — device work and link
// transfers alike: the total resource busy time the timeline accounts
// for. A DMA engine moving payload is doing work the same way a
// processor filtering it is; the paper's data-flow argument is exactly
// that all of them should be busy at once.
func (t *Trace) WorkBusy() sim.VTime {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum sim.VTime
	for _, s := range t.spans {
		sum += s.End - s.Start
	}
	return sum
}

// ConcurrencyFactor is the staged-pipeline overlap measure: the summed
// duration of all spans divided by their makespan (first start to last
// end) — the mean number of simultaneously active resources, links
// included. A serial engine that uses one resource at a time scores at
// most 1.0; a pipeline whose stages and transfers run concurrently
// scores the mean count of overlapping resources. Returns 0 with no
// spans.
func (t *Trace) ConcurrencyFactor() float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum sim.VTime
	first := sim.VTime(-1)
	var last sim.VTime
	for _, s := range t.spans {
		sum += s.End - s.Start
		if first < 0 || s.Start < first {
			first = s.Start
		}
		if s.End > last {
			last = s.End
		}
	}
	if first < 0 || last <= first {
		return 0
	}
	return float64(sum) / float64(last-first)
}

// Utilization reports each track's busy fraction of the overall
// makespan, sorted by track via the returned slice.
type TrackUtil struct {
	Track string
	Busy  sim.VTime
	Util  float64
}

// Utilizations computes per-track busy time over the trace makespan.
func (t *Trace) Utilizations() []TrackUtil {
	if t == nil {
		return nil
	}
	span := t.Makespan()
	t.mu.Lock()
	busy := make(map[string]sim.VTime)
	for _, s := range t.spans {
		busy[s.Track] += s.End - s.Start
	}
	t.mu.Unlock()
	out := make([]TrackUtil, 0, len(busy))
	for track, b := range busy {
		u := TrackUtil{Track: track, Busy: b}
		if span > 0 {
			u.Util = float64(b) / float64(span)
		}
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Track < out[j].Track })
	return out
}

// VClock is a single-writer virtual clock: the storage scan advances it
// as it charges media and processor work, and the flow source stamps
// each emitted batch with its reading, putting the scan and the
// downstream pipeline on one timeline. Nil is a frozen clock at 0.
type VClock struct {
	now sim.VTime
}

// NewVClock returns a clock at virtual time 0.
func NewVClock() *VClock { return &VClock{} }

// Now reads the clock. Safe on nil (always 0).
func (c *VClock) Now() sim.VTime {
	if c == nil {
		return 0
	}
	return c.now
}

// Advance moves the clock forward by dt and returns the new reading.
// Safe on nil (no-op).
func (c *VClock) Advance(dt sim.VTime) sim.VTime {
	if c == nil {
		return 0
	}
	c.now += dt
	return c.now
}
