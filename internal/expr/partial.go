package expr

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"repro/internal/columnar"
)

// This file implements the split aggregation the paper's Section 4.4
// builds its staged pipeline from: a bounded-state PartialAggregator that
// any device along the data path can host (storage processor, sending
// NIC, receiving NIC), and a FinalAggregator on the compute node that
// merges partial states into exact results.
//
// Partial states travel between stages as ordinary batches with a
// self-describing schema: the group columns followed by seven state
// columns per aggregate (count, integer/float sums, integer/float
// mins/maxes). Each stage can therefore consume the previous stage's
// partials and emit (fewer) partials of the same shape — the "pipeline of
// group-by stages, each improving on the previous one" of Section 4.4.

// partialStateCols is the number of state columns emitted per AggSpec.
const partialStateCols = 7

// PartialSchema derives the wire schema of partial aggregation results
// for spec over input schema in.
func PartialSchema(spec GroupBy, in *columnar.Schema) *columnar.Schema {
	fields := make([]columnar.Field, 0, len(spec.GroupCols)+partialStateCols*len(spec.Aggs))
	for _, c := range spec.GroupCols {
		fields = append(fields, in.Fields[c])
	}
	for i := range spec.Aggs {
		fields = append(fields,
			columnar.Field{Name: fmt.Sprintf("a%d_cnt", i), Type: columnar.Int64},
			columnar.Field{Name: fmt.Sprintf("a%d_sumi", i), Type: columnar.Int64},
			columnar.Field{Name: fmt.Sprintf("a%d_sumf", i), Type: columnar.Float64},
			columnar.Field{Name: fmt.Sprintf("a%d_mini", i), Type: columnar.Int64},
			columnar.Field{Name: fmt.Sprintf("a%d_maxi", i), Type: columnar.Int64},
			columnar.Field{Name: fmt.Sprintf("a%d_minf", i), Type: columnar.Float64},
			columnar.Field{Name: fmt.Sprintf("a%d_maxf", i), Type: columnar.Float64},
		)
	}
	return &columnar.Schema{Fields: fields}
}

type partialGroup struct {
	key    string
	vals   []columnar.Value // group column values
	states []AggState       // one per AggSpec
}

// PartialAggregator folds raw rows and/or upstream partials into bounded
// group state. When the number of groups would exceed MaxGroups, the
// accumulated partials are flushed downstream and the state is cleared —
// the "mostly stateless" discipline Section 3.3 demands of in-path
// operators.
type PartialAggregator struct {
	Spec      GroupBy
	In        *columnar.Schema
	MaxGroups int // 0 = unbounded

	groups map[string]*partialGroup
	order  []*partialGroup
}

// NewPartialAggregator builds a partial aggregator for spec over batches
// with schema in. Spec column indices refer to positions in in.
func NewPartialAggregator(spec GroupBy, in *columnar.Schema, maxGroups int) *PartialAggregator {
	return &PartialAggregator{
		Spec:      spec,
		In:        in,
		MaxGroups: maxGroups,
		groups:    make(map[string]*partialGroup),
	}
}

// NumGroups reports the number of groups currently held.
func (p *PartialAggregator) NumGroups() int { return len(p.groups) }

// PartialSchema returns the schema of the batches this aggregator emits.
func (p *PartialAggregator) PartialSchema() *columnar.Schema {
	return PartialSchema(p.Spec, p.In)
}

// AddRaw folds a batch of raw input rows, returning any partial batches
// flushed due to the group budget.
func (p *PartialAggregator) AddRaw(b *columnar.Batch) []*columnar.Batch {
	var flushed []*columnar.Batch
	for row := 0; row < b.NumRows(); row++ {
		g, spill := p.group(b, row)
		if spill != nil {
			flushed = append(flushed, spill)
			g, _ = p.group(b, row)
		}
		for ai, spec := range p.Spec.Aggs {
			st := &g.states[ai]
			if spec.Func == Count {
				st.UpdateCountOnly()
				continue
			}
			col := b.Col(spec.Col)
			if col.IsNull(row) {
				continue
			}
			switch col.Type() {
			case columnar.Int64:
				st.UpdateInt(col.Int64s()[row])
			case columnar.Float64:
				st.UpdateFloat(col.Float64s()[row])
			default:
				// Non-numeric aggregation input contributes to COUNT
				// semantics only.
				st.UpdateCountOnly()
			}
		}
	}
	return flushed
}

// AddPartial folds a batch of upstream partials (schema PartialSchema),
// returning any flushes. This is what lets stages chain.
func (p *PartialAggregator) AddPartial(b *columnar.Batch) []*columnar.Batch {
	ng := len(p.Spec.GroupCols)
	var flushed []*columnar.Batch
	for row := 0; row < b.NumRows(); row++ {
		g, spill := p.groupFromPartial(b, row)
		if spill != nil {
			flushed = append(flushed, spill)
			g, _ = p.groupFromPartial(b, row)
		}
		for ai := range p.Spec.Aggs {
			base := ng + ai*partialStateCols
			st := AggState{
				Count: b.Col(base).Int64s()[row],
				SumI:  b.Col(base + 1).Int64s()[row],
				SumF:  b.Col(base + 2).Float64s()[row],
				MinI:  b.Col(base + 3).Int64s()[row],
				MaxI:  b.Col(base + 4).Int64s()[row],
				MinF:  b.Col(base + 5).Float64s()[row],
				MaxF:  b.Col(base + 6).Float64s()[row],
			}
			st.seen = st.Count > 0
			g.states[ai].Merge(&st)
		}
	}
	return flushed
}

// group finds or creates the group for raw row, flushing first if the
// budget is exhausted. The returned spill batch, if non-nil, must be
// emitted downstream before retrying.
func (p *PartialAggregator) group(b *columnar.Batch, row int) (*partialGroup, *columnar.Batch) {
	vals := make([]columnar.Value, len(p.Spec.GroupCols))
	for i, c := range p.Spec.GroupCols {
		vals[i] = b.Col(c).Value(row)
	}
	return p.findGroup(vals)
}

func (p *PartialAggregator) groupFromPartial(b *columnar.Batch, row int) (*partialGroup, *columnar.Batch) {
	vals := make([]columnar.Value, len(p.Spec.GroupCols))
	for i := range p.Spec.GroupCols {
		vals[i] = b.Col(i).Value(row)
	}
	return p.findGroup(vals)
}

func (p *PartialAggregator) findGroup(vals []columnar.Value) (*partialGroup, *columnar.Batch) {
	key := encodeGroupKey(vals)
	if g, ok := p.groups[key]; ok {
		return g, nil
	}
	if p.MaxGroups > 0 && len(p.groups) >= p.MaxGroups {
		return nil, p.Flush()
	}
	g := &partialGroup{key: key, vals: vals, states: make([]AggState, len(p.Spec.Aggs))}
	p.groups[key] = g
	p.order = append(p.order, g)
	return g, nil
}

// Clone deep-copies the aggregator's accumulated state, for stage-level
// checkpointing: the copy shares no group records with the original, so
// either side can keep folding rows without affecting the other.
func (p *PartialAggregator) Clone() *PartialAggregator {
	c := &PartialAggregator{
		Spec:      p.Spec,
		In:        p.In,
		MaxGroups: p.MaxGroups,
		groups:    make(map[string]*partialGroup, len(p.groups)),
		order:     make([]*partialGroup, 0, len(p.order)),
	}
	for _, g := range p.order {
		ng := &partialGroup{
			key:    g.key,
			vals:   append([]columnar.Value(nil), g.vals...),
			states: append([]AggState(nil), g.states...),
		}
		c.groups[ng.key] = ng
		c.order = append(c.order, ng)
	}
	return c
}

// Flush emits all held groups as one partial batch (nil when empty) and
// clears the state.
func (p *PartialAggregator) Flush() *columnar.Batch {
	if len(p.groups) == 0 {
		return nil
	}
	out := columnar.NewBatch(p.PartialSchema(), len(p.order))
	for _, g := range p.order {
		row := make([]columnar.Value, 0, len(g.vals)+partialStateCols*len(g.states))
		row = append(row, g.vals...)
		for i := range g.states {
			st := &g.states[i]
			row = append(row,
				columnar.IntValue(st.Count),
				columnar.IntValue(st.SumI),
				columnar.FloatValue(st.SumF),
				columnar.IntValue(st.MinI),
				columnar.IntValue(st.MaxI),
				columnar.FloatValue(st.MinF),
				columnar.FloatValue(st.MaxF),
			)
		}
		out.AppendRow(row...)
	}
	p.groups = make(map[string]*partialGroup)
	p.order = nil
	return out
}

// FinalAggregator merges partials (or raw rows) into exact final results
// on the compute node. It holds unbounded state, which is fine there.
type FinalAggregator struct {
	partial *PartialAggregator
	in      *columnar.Schema
}

// NewFinalAggregator builds the terminal aggregation stage for spec over
// original input schema in.
func NewFinalAggregator(spec GroupBy, in *columnar.Schema) *FinalAggregator {
	return &FinalAggregator{partial: NewPartialAggregator(spec, in, 0), in: in}
}

// AddRaw folds raw input rows.
func (f *FinalAggregator) AddRaw(b *columnar.Batch) { f.partial.AddRaw(b) }

// AddPartial folds upstream partial batches.
func (f *FinalAggregator) AddPartial(b *columnar.Batch) { f.partial.AddPartial(b) }

// NumGroups reports the number of result groups so far.
func (f *FinalAggregator) NumGroups() int { return f.partial.NumGroups() }

// Clone deep-copies the aggregator's accumulated state (see
// PartialAggregator.Clone).
func (f *FinalAggregator) Clone() *FinalAggregator {
	return &FinalAggregator{partial: f.partial.Clone(), in: f.in}
}

// Result materializes the final aggregate values, sorted by group key for
// deterministic output.
func (f *FinalAggregator) Result() *columnar.Batch {
	spec := f.partial.Spec
	out := columnar.NewBatch(spec.OutputSchema(f.in), len(f.partial.order))
	groups := append([]*partialGroup(nil), f.partial.order...)
	sort.Slice(groups, func(i, j int) bool { return groups[i].key < groups[j].key })
	for _, g := range groups {
		row := make([]columnar.Value, 0, len(g.vals)+len(spec.Aggs))
		row = append(row, g.vals...)
		for ai, a := range spec.Aggs {
			typ := columnar.Int64
			if a.Func != Count {
				typ = f.in.Fields[a.Col].Type
			}
			row = append(row, g.states[ai].Result(a.Func, typ))
		}
		out.AppendRow(row...)
	}
	return out
}

// encodeGroupKey builds a collision-free byte key from group values.
func encodeGroupKey(vals []columnar.Value) string {
	var buf []byte
	for _, v := range vals {
		buf = append(buf, byte(v.Type))
		if v.Null {
			buf = append(buf, 0)
			continue
		}
		buf = append(buf, 1)
		switch v.Type {
		case columnar.Int64:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v.I))
		case columnar.Float64:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
		case columnar.String:
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.S)))
			buf = append(buf, v.S...)
		case columnar.Bool:
			if v.B {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	}
	return string(buf)
}

// Rebase returns a copy of the GroupBy with all column indices translated
// through m, used when a spec expressed over a table schema is evaluated
// against a batch holding only a subset of columns.
func (g GroupBy) Rebase(m func(int) int) GroupBy {
	out := GroupBy{GroupCols: make([]int, len(g.GroupCols)), Aggs: make([]AggSpec, len(g.Aggs))}
	for i, c := range g.GroupCols {
		out.GroupCols[i] = m(c)
	}
	for i, a := range g.Aggs {
		out.Aggs[i] = AggSpec{Func: a.Func, Col: a.Col}
		if a.Func != Count {
			out.Aggs[i].Col = m(a.Col)
		}
	}
	return out
}
