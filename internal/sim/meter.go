package sim

import (
	"sort"
	"sync"
)

// Meter accumulates traffic and busy time for one simulated resource
// (a device or a link). All methods are safe for concurrent use; pipeline
// stages run on separate goroutines and charge their own costs.
//
// The counters are guarded by one mutex rather than independent atomics
// so that Snapshot observes a consistent state: a charge that touches
// several counters (Add) is applied indivisibly, and a snapshot taken
// mid-query never mixes the bytes of one charge with the busy time of
// another. The observability layer samples meters while stages are still
// charging, which made the old torn four-load snapshot a real hazard
// rather than a theoretical one.
//
// Concurrency contract (relied on by the morsel-driven worker pools,
// which put many goroutines behind one meter):
//
//   - Every mutation is a commutative addition applied under the lock,
//     so the totals a quiesced meter reports are independent of writer
//     interleaving — seeded parallel runs meter identical byte/busy
//     sums no matter how the scheduler ordered the workers.
//   - Snapshot/Sub deltas are only meaningful when taken from the same
//     goroutine ordering context (before work starts / after the wait
//     group joins); mid-flight snapshots are consistent but may land
//     between any two charges.
//   - A MeterSet snapshot is per-meter consistent, not a global cut;
//     cross-meter invariants (e.g. link bytes == downstream device
//     bytes) only hold once the pipeline has quiesced.
type Meter struct {
	mu       sync.Mutex
	bytes    int64 // payload bytes processed or moved
	busy     int64 // virtual nanoseconds of busy time
	ops      int64 // discrete operations (transfers, kernel launches)
	messages int64 // protocol/control messages (credits, invalidations)
}

// Add charges a whole snapshot's worth of counters in one indivisible
// step. Devices and links use it so a single logical charge (bytes +
// busy + op) can never be observed half-applied.
func (m *Meter) Add(s Snapshot) {
	m.mu.Lock()
	m.bytes += int64(s.Bytes)
	m.busy += int64(s.Busy)
	m.ops += s.Ops
	m.messages += s.Messages
	m.mu.Unlock()
}

// AddBytes charges n payload bytes to the meter.
func (m *Meter) AddBytes(n Bytes) {
	m.mu.Lock()
	m.bytes += int64(n)
	m.mu.Unlock()
}

// AddBusy charges t of virtual busy time to the meter.
func (m *Meter) AddBusy(t VTime) {
	m.mu.Lock()
	m.busy += int64(t)
	m.mu.Unlock()
}

// AddOps charges n discrete operations.
func (m *Meter) AddOps(n int64) {
	m.mu.Lock()
	m.ops += n
	m.mu.Unlock()
}

// AddMessages charges n protocol messages (e.g. credit grants, coherency
// invalidations). Counted separately so experiments can report the
// control-traffic overhead the paper claims is low (Section 7.1).
func (m *Meter) AddMessages(n int64) {
	m.mu.Lock()
	m.messages += n
	m.mu.Unlock()
}

// Bytes reports total payload bytes charged so far.
func (m *Meter) Bytes() Bytes {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Bytes(m.bytes)
}

// Busy reports total virtual busy time charged so far.
func (m *Meter) Busy() VTime {
	m.mu.Lock()
	defer m.mu.Unlock()
	return VTime(m.busy)
}

// Ops reports total discrete operations charged so far.
func (m *Meter) Ops() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// Messages reports total protocol messages charged so far.
func (m *Meter) Messages() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.messages
}

// Reset zeroes all counters.
func (m *Meter) Reset() {
	m.mu.Lock()
	m.bytes, m.busy, m.ops, m.messages = 0, 0, 0, 0
	m.mu.Unlock()
}

// Snapshot is a point-in-time copy of a Meter's counters.
type Snapshot struct {
	Bytes    Bytes
	Busy     VTime
	Ops      int64
	Messages int64
}

// Snapshot returns a consistent copy of the current counters: all four
// are read under one lock, so the result reflects a state the meter
// actually passed through.
func (m *Meter) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Snapshot{
		Bytes:    Bytes(m.bytes),
		Busy:     VTime(m.busy),
		Ops:      m.ops,
		Messages: m.messages,
	}
}

// Sub returns the counter deltas s minus prev. Used to isolate the cost of
// one query on meters that persist across queries.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	return Snapshot{
		Bytes:    s.Bytes - prev.Bytes,
		Busy:     s.Busy - prev.Busy,
		Ops:      s.Ops - prev.Ops,
		Messages: s.Messages - prev.Messages,
	}
}

// MeterSet is a named collection of meters, used by topologies to expose
// per-device and per-link accounting by name.
type MeterSet struct {
	mu     sync.Mutex
	meters map[string]*Meter
}

// NewMeterSet returns an empty MeterSet.
func NewMeterSet() *MeterSet {
	return &MeterSet{meters: make(map[string]*Meter)}
}

// Get returns the meter registered under name, creating it on first use.
func (s *MeterSet) Get(name string) *Meter {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.meters[name]
	if !ok {
		m = &Meter{}
		s.meters[name] = m
	}
	return m
}

// Names returns the registered meter names in sorted order.
func (s *MeterSet) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.meters))
	for n := range s.meters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ResetAll zeroes every registered meter.
func (s *MeterSet) ResetAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.meters {
		m.Reset()
	}
}

// Snapshots returns a copy of every meter's counters keyed by name. Each
// meter's snapshot is internally consistent (see Meter.Snapshot); the
// set as a whole is not a global atomic cut, which is fine for the
// per-resource deltas the engines and traces compute.
func (s *MeterSet) Snapshots() map[string]Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Snapshot, len(s.meters))
	for n, m := range s.meters {
		out[n] = m.Snapshot()
	}
	return out
}
