package resilience

import (
	"sync"
	"time"
)

// BreakerState is one of the three classic circuit-breaker states.
type BreakerState uint8

// Breaker states. Closed admits all work; Open rejects it; HalfOpen
// admits a bounded number of probes whose outcome decides between the
// other two.
const (
	Closed BreakerState = iota
	Open
	HalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a BreakerSet.
type BreakerConfig struct {
	// TripThreshold is the number of consecutive failures that opens the
	// breaker. Values below 1 are clamped to 1.
	TripThreshold int
	// Cooldown is how long an open breaker rejects work before moving to
	// half-open. It also bounds how long a half-open probe slot stays
	// consumed without a verdict before it is replenished, so a probe
	// that is admitted but never reported back cannot wedge the breaker.
	Cooldown time.Duration
	// HalfOpenProbes is how many concurrent probes half-open admits.
	// Values below 1 are clamped to 1.
	HalfOpenProbes int
}

// BreakerSet is a family of per-key circuit breakers (one per device)
// sharing a config. The scheduler consults Allow before placing work on
// a device; the engines report Success/Failure after each placement.
// All methods are safe for concurrent use; a nil *BreakerSet admits
// everything.
type BreakerSet struct {
	cfg BreakerConfig
	// now is the clock, swappable in tests.
	now func() time.Time
	// OnChange, if set, is called (outside the lock) whenever a key's
	// state changes — the engines use it to flag fabric devices degraded.
	OnChange func(key string, s BreakerState)

	mu       sync.Mutex
	breakers map[string]*breaker
	trips    int64
}

type breaker struct {
	state    BreakerState
	failures int       // consecutive failures while closed
	until    time.Time // open: when to go half-open
	probes   int       // half-open: outstanding probe slots consumed
	probedAt time.Time // half-open: when the last probe slot was handed out
}

// NewBreakerSet returns a breaker family with the given config.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	if cfg.TripThreshold < 1 {
		cfg.TripThreshold = 1
	}
	if cfg.HalfOpenProbes < 1 {
		cfg.HalfOpenProbes = 1
	}
	return &BreakerSet{cfg: cfg, now: time.Now, breakers: make(map[string]*breaker)}
}

// SetClock replaces the breaker clock, for deterministic tests.
func (b *BreakerSet) SetClock(now func() time.Time) {
	if b == nil || now == nil {
		return
	}
	b.mu.Lock()
	b.now = now
	b.mu.Unlock()
}

// Allow reports whether work may be placed on key right now. In
// half-open it consumes a probe slot, so a true return from a half-open
// breaker obliges the caller to eventually report Success or Failure;
// slots held longer than Cooldown are replenished to tolerate callers
// that die in between.
func (b *BreakerSet) Allow(key string) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	br := b.breakers[key]
	if br == nil {
		b.mu.Unlock()
		return true
	}
	now := b.now()
	var changed *BreakerState
	allowed := false
	switch br.state {
	case Closed:
		allowed = true
	case Open:
		if now.Before(br.until) {
			break
		}
		br.state = HalfOpen
		br.probes = 0
		s := HalfOpen
		changed = &s
		fallthrough
	case HalfOpen:
		if br.probes >= b.cfg.HalfOpenProbes && b.cfg.Cooldown > 0 && now.Sub(br.probedAt) >= b.cfg.Cooldown {
			// Probe slots were handed out but never reported back;
			// replenish so the device is not stuck half-open forever.
			br.probes = 0
		}
		if br.probes < b.cfg.HalfOpenProbes {
			br.probes++
			br.probedAt = now
			allowed = true
		}
	}
	cb := b.OnChange
	b.mu.Unlock()
	if changed != nil && cb != nil {
		cb(key, *changed)
	}
	return allowed
}

// Success reports a completed placement on key: a half-open breaker
// closes, a closed breaker clears its failure streak.
func (b *BreakerSet) Success(key string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	br := b.breakers[key]
	if br == nil {
		b.mu.Unlock()
		return
	}
	var changed *BreakerState
	switch br.state {
	case Closed:
		br.failures = 0
	case HalfOpen:
		br.state = Closed
		br.failures = 0
		br.probes = 0
		s := Closed
		changed = &s
	}
	cb := b.OnChange
	b.mu.Unlock()
	if changed != nil && cb != nil {
		cb(key, *changed)
	}
}

// Reset force-closes key's breaker, clearing its failure streak without
// waiting out the cooldown. For callers that *know* the participant is
// healthy again — the repair controller closes a replica's breaker the
// moment re-replication has restored it with verified bytes, rather
// than leaving it condemned until a half-open probe happens by.
func (b *BreakerSet) Reset(key string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	br := b.breakers[key]
	if br == nil || br.state == Closed {
		b.mu.Unlock()
		return
	}
	br.state = Closed
	br.failures = 0
	br.probes = 0
	cb := b.OnChange
	b.mu.Unlock()
	if cb != nil {
		cb(key, Closed)
	}
}

// Failure reports a failed placement on key: it extends the failure
// streak and trips the breaker at TripThreshold; a half-open probe
// failure re-opens immediately.
func (b *BreakerSet) Failure(key string) {
	if b == nil {
		return
	}
	b.mu.Lock()
	br := b.breakers[key]
	if br == nil {
		br = &breaker{}
		b.breakers[key] = br
	}
	var changed *BreakerState
	switch br.state {
	case Closed:
		br.failures++
		if br.failures >= b.cfg.TripThreshold {
			br.state = Open
			br.until = b.now().Add(b.cfg.Cooldown)
			b.trips++
			s := Open
			changed = &s
		}
	case HalfOpen:
		br.state = Open
		br.until = b.now().Add(b.cfg.Cooldown)
		br.probes = 0
		b.trips++
		s := Open
		changed = &s
	case Open:
		// Already open; refresh the cooldown so a failing probe path
		// keeps the breaker open.
		br.until = b.now().Add(b.cfg.Cooldown)
	}
	cb := b.OnChange
	b.mu.Unlock()
	if changed != nil && cb != nil {
		cb(key, *changed)
	}
}

// State reports key's current state without consuming probe slots (an
// open breaker past its cooldown still reports Open until the next
// Allow transitions it).
func (b *BreakerSet) State(key string) BreakerState {
	if b == nil {
		return Closed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	br := b.breakers[key]
	if br == nil {
		return Closed
	}
	return br.state
}

// Trips reports how many open transitions have happened so far.
func (b *BreakerSet) Trips() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
