package sched

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func TestMaxActiveQueuesFIFO(t *testing.T) {
	_, v0, _ := twoNodeVariants(t)
	s := New()
	s.MaxActive = 1

	a1, err := s.Admit(context.Background(), v0)
	if err != nil {
		t.Fatal(err)
	}
	// Park two waiters, in a known order.
	order := make(chan int, 2)
	admitted := make(chan *Admission, 2)
	for i := 1; i <= 2; i++ {
		i := i
		prevDepth := i - 1
		waitFor(t, "queue to grow", func() bool { return s.QueueDepth() == prevDepth })
		go func() {
			adm, err := s.Admit(context.Background(), v0)
			if err != nil {
				t.Error(err)
			}
			order <- i
			admitted <- adm
		}()
		waitFor(t, "waiter to park", func() bool { return s.QueueDepth() == i })
	}

	// Each release grants exactly the next waiter, oldest first.
	s.Release(a1)
	if got := <-order; got != 1 {
		t.Fatalf("first grant went to waiter %d", got)
	}
	if s.ActiveCount() != 1 || s.QueueDepth() != 1 {
		t.Errorf("after first grant: active=%d queued=%d, want 1/1", s.ActiveCount(), s.QueueDepth())
	}
	s.Release(<-admitted)
	if got := <-order; got != 2 {
		t.Fatalf("second grant went to waiter %d", got)
	}
	s.Release(<-admitted)
	if s.ActiveCount() != 0 || s.QueueDepth() != 0 {
		t.Errorf("drained: active=%d queued=%d", s.ActiveCount(), s.QueueDepth())
	}
}

func TestQueueCapSheds(t *testing.T) {
	_, v0, _ := twoNodeVariants(t)
	s := New()
	s.MaxActive = 1
	s.QueueCap = 1

	a1, err := s.Admit(context.Background(), v0)
	if err != nil {
		t.Fatal(err)
	}
	granted := make(chan *Admission, 1)
	go func() {
		adm, err := s.Admit(context.Background(), v0)
		if err != nil {
			t.Error(err)
		}
		granted <- adm
	}()
	waitFor(t, "waiter to park", func() bool { return s.QueueDepth() == 1 })

	// Queue full: the third arrival sheds immediately, holding nothing.
	_, err = s.Admit(context.Background(), v0)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if !strings.Contains(err.Error(), "queue full") {
		t.Errorf("shed reason %q does not mention the full queue", err)
	}

	s.Release(a1)
	s.Release(<-granted)
	if s.ActiveCount() != 0 || s.QueueDepth() != 0 {
		t.Error("resources leaked after shed")
	}
}

func TestDeadlineExpiresInQueue(t *testing.T) {
	_, v0, _ := twoNodeVariants(t)
	s := New()
	s.MaxActive = 1

	a1, err := s.Admit(context.Background(), v0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err = s.Admit(ctx, v0)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded for a deadline expiring in queue", err)
	}
	if s.QueueDepth() != 0 {
		t.Error("expired waiter still parked in the queue")
	}
	s.Release(a1)
	if s.ActiveCount() != 0 {
		t.Error("admission leaked")
	}
}

func TestCancelledWhileQueued(t *testing.T) {
	_, v0, _ := twoNodeVariants(t)
	s := New()
	s.MaxActive = 1

	a1, err := s.Admit(context.Background(), v0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errs := make(chan error, 1)
	go func() {
		_, err := s.Admit(ctx, v0)
		errs <- err
	}()
	waitFor(t, "waiter to park", func() bool { return s.QueueDepth() == 1 })
	cancel()
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.QueueDepth() != 0 {
		t.Error("cancelled waiter still parked")
	}
	s.Release(a1)
}

func TestProjectedWaitShedsAgainstDeadline(t *testing.T) {
	_, v0, _ := twoNodeVariants(t)
	s := New()
	s.MaxActive = 1

	// Teach the scheduler a realistic service time: one admitted plan
	// held for ~50ms.
	a, err := s.Admit(context.Background(), v0)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	s.Release(a)

	// With one slot busy, a query whose deadline is far shorter than the
	// projected wait sheds immediately instead of queueing doomed.
	a1, err := s.Admit(context.Background(), v0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	_, err = s.Admit(ctx, v0)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if !strings.Contains(err.Error(), "projected") {
		t.Errorf("shed reason %q does not mention the projected wait", err)
	}
	if s.QueueDepth() != 0 {
		t.Error("doomed query was queued anyway")
	}
	s.Release(a1)
}

func TestFailureScoreDecaysAndCaps(t *testing.T) {
	_, v0, _ := twoNodeVariants(t)
	s := New()
	const dev = "compute0.nic"

	// The score saturates at the cap no matter how many failures pile up.
	for i := 0; i < 30; i++ {
		s.NoteFailover(dev)
	}
	if got := s.FailureScore(dev); got != DefaultMaxFailureScore {
		t.Fatalf("FailureScore after 30 failovers = %v, want cap %v", got, DefaultMaxFailureScore)
	}

	// Each successful admission erodes the score geometrically, so a
	// recovered device is forgiven within a bounded number of admissions.
	prev := s.FailureScore(dev)
	forgiven := 0
	for i := 0; i < 40 && s.DeviceFailures(dev) > 0; i++ {
		a, err := s.Admit(context.Background(), v0)
		if err != nil {
			t.Fatal(err)
		}
		s.Release(a)
		got := s.FailureScore(dev)
		if got > prev {
			t.Fatalf("score rose from %v to %v on a clean admission", prev, got)
		}
		prev = got
		forgiven = i + 1
	}
	if s.DeviceFailures(dev) != 0 {
		t.Errorf("device never forgiven; score still %v after 40 admissions", s.FailureScore(dev))
	}
	if forgiven == 0 || forgiven > 25 {
		t.Errorf("forgiveness took %d admissions, want within (0, 25]", forgiven)
	}

	// A new failure on a clean record counts exactly once — the contract
	// the failover accounting in core relies on.
	s.NoteFailover(dev)
	if got := s.DeviceFailures(dev); got != 1 {
		t.Errorf("DeviceFailures after one failover = %d, want 1", got)
	}
}
