// Query lifecycle: typed errors and context mapping.
//
// Every exported entry point (Execute, ExecuteOn, ExecutePlan,
// ExecuteJoin, ExecuteGroupByDistributed, and the Volcano equivalents)
// takes a context.Context as its first parameter. Deadlines and
// cancellation propagate through the flow runtime's done channel into
// every stage goroutine, port send, storage scan segment, and fabric
// transfer, so an abandoned query always unwinds: goroutines exit,
// credits drain, and the scheduler admission is released.
package core

import (
	"context"
	"errors"
	"fmt"
)

// ErrDeadlineExceeded reports that a query's context deadline expired
// mid-flight. The query's partial work is discarded; recovery meters
// still record what it burned.
var ErrDeadlineExceeded = errors.New("core: query deadline exceeded")

// ErrCancelled reports that a query's context was cancelled mid-flight.
var ErrCancelled = errors.New("core: query cancelled")

// lifecycleError maps a context error (possibly wrapped inside err) to
// the typed lifecycle error, keeping the original chain for %w
// inspection. Errors unrelated to the context pass through unchanged.
func lifecycleError(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrDeadlineExceeded, err)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %w", ErrCancelled, err)
	}
	return err
}

// ctxOrBackground normalizes a nil context so internal plumbing can
// select on ctx.Done() unconditionally.
func ctxOrBackground(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}
