package storage

import (
	"context"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/resilience"
	"repro/internal/sim"
)

// Gray-failure defenses: hedged replica reads, speculative morsel
// re-execution, and the metering invariants that keep both honest —
// logical totals count each payload exactly once, duplicate work lands
// only in the hedge/speculation counters, and no racer goroutine
// outlives its read.

// waitGoroutines polls until the goroutine count settles back to the
// baseline, then fails with a full stack dump if it never does.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
			n, base, buf[:runtime.Stack(buf, true)])
	}
}

// A hedged read racing a badly degraded primary must return the healthy
// replica's data, meter the duplicate work on the hedge side only, and
// teach the health tracker enough to demote the gray replica for the
// next read.
func TestHedgedReadWinsOverDegradedReplica(t *testing.T) {
	o := NewObjectStore()
	o.SetReplicas(2)
	o.BaseLatency = 2 * time.Millisecond
	payload := []byte("hedged payload bytes")
	o.Put("k", payload)

	// Replica 0 serves 50x slower — long past any race margin — while
	// replica 1 stays healthy.
	inj := faults.New(1)
	inj.Arm(faults.Point{Kind: faults.DegradedDevice, Target: "store/r0",
		Prob: 1, Severity: 50})
	o.Faults = inj
	pol := resilience.NewPolicy()
	// One sample is enough history for this test's steering assertions.
	pol.Health = resilience.NewTracker(0.2, 1)
	o.Resilience = pol

	opsBefore, bytesBefore := o.Meter.Ops(), o.Meter.Bytes() // Put metered too
	base := runtime.NumGoroutine()
	got, err := o.Get(context.Background(), "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("hedged read returned %q", got)
	}
	h := o.Hedges()
	if h.Hedged != 1 || h.Wins != 1 {
		t.Fatalf("hedge stats = %+v, want exactly one launched and won", h)
	}
	// The winning payload is hedge-side work; the cancelled primary
	// charged its op but never delivered bytes. Main + hedge together
	// account for the payload exactly once.
	if h.Bytes != sim.Bytes(len(payload)) {
		t.Errorf("hedge bytes = %d, want %d", h.Bytes, len(payload))
	}
	if b := o.Meter.Bytes() - bytesBefore; b != 0 {
		t.Errorf("main meter read bytes = %d, want 0 (primary was cancelled mid-read)", b)
	}
	if ops := o.Meter.Ops() - opsBefore; ops != 1 {
		t.Errorf("main meter read ops = %d, want the primary's single attempt", ops)
	}

	// The cancelled primary still fed the health tracker a lower bound,
	// so ranking now prefers replica 1 outright.
	if n := pol.Health.Samples("store/r0"); n == 0 {
		t.Error("cancelled slow read left replica 0 unsampled — it would stay primary forever")
	}
	waitGoroutines(t, base)

	// Second read: steering sends the primary to the healthy replica and
	// no hedge fires, so the payload lands on the main meter.
	got, err = o.Get(context.Background(), "k")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("steered read returned %q", got)
	}
	if h := o.Hedges(); h.Hedged != 1 {
		t.Errorf("steered read still hedged: %+v", h)
	}
	if b := o.Meter.Bytes() - bytesBefore; b != sim.Bytes(len(payload)) {
		t.Errorf("main meter read bytes after steered read = %d, want %d", b, len(payload))
	}
}

// Hedged reads under repeated load must not leak racer goroutines and
// must keep the conservation invariant: every byte is either primary
// work on the main meter or duplicate work on the hedge counters.
func TestHedgedReadNoLeakNoDoubleCount(t *testing.T) {
	o := NewObjectStore()
	o.SetReplicas(2)
	o.BaseLatency = time.Millisecond
	payload := make([]byte, 512)
	keys := []string{"a", "b", "c"}
	for _, k := range keys {
		o.Put(k, payload)
	}
	inj := faults.New(2)
	inj.Arm(faults.Point{Kind: faults.DegradedDevice, Target: "store/r0",
		Prob: 1, Severity: 40})
	o.Faults = inj
	o.Resilience = resilience.NewPolicy()

	bytesBefore := o.Meter.Bytes() // Put metered too
	base := runtime.NumGoroutine()
	reads := 0
	for round := 0; round < 4; round++ {
		for _, k := range keys {
			got, err := o.Get(context.Background(), k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(payload) {
				t.Fatalf("read %q returned %d bytes", k, len(got))
			}
			reads++
		}
	}
	total := o.Meter.Bytes() - bytesBefore + o.Hedges().Bytes
	if want := sim.Bytes(reads * len(payload)); total != want {
		t.Errorf("main+hedge bytes = %d, want %d: payloads double- or under-counted", total, want)
	}
	waitGoroutines(t, base)
}

// A parallel scan whose last morsel straggles re-executes it; the
// duplicate wins (the injected slowness has budget for one fire), the
// stuck copy is cancelled, and the scan's logical output and totals are
// identical to an undisturbed serial scan.
func TestSpeculativeRerunExactlyOnce(t *testing.T) {
	want, wantStats, _ := scanAll(t, func() *Server {
		srv := newTestServer(t, true)
		loadTable(t, srv, 7000)
		return srv
	}(), ScanSpec{})

	srv := newTestServer(t, true)
	loadTable(t, srv, 7000)
	store := srv.Store()
	store.BaseLatency = 2 * time.Millisecond
	// Only the last-claimed morsel's read is degraded, and only once —
	// so the speculative duplicate reads at full health and wins.
	inj := faults.New(3)
	inj.Arm(faults.Point{Kind: faults.DegradedDevice,
		Target: "store/r0/lineitem/seg-000006", Prob: 1, Budget: 1, Severity: 16})
	store.Faults = inj
	pol := resilience.NewPolicy()
	pol.Hedge = false // isolate speculation from hedging
	store.Resilience = pol

	base := runtime.NumGoroutine()
	got, stats, _ := scanAll(t, srv, ScanSpec{Workers: 2})
	if !reflect.DeepEqual(rowsOf(got), rowsOf(want)) {
		t.Fatal("speculated scan emitted different rows than the serial scan")
	}
	if stats.SpeculativeMorsels != 1 || stats.SpeculativeWins != 1 {
		t.Fatalf("speculation = %d launched / %d won, want 1/1 (stats %+v)",
			stats.SpeculativeMorsels, stats.SpeculativeWins, stats)
	}
	// Winner-only logical totals: the cancelled primary never reached
	// its media charge, so even the loser-side bytes stay zero here.
	if stats.MediaBytes != wantStats.MediaBytes {
		t.Errorf("MediaBytes = %d, want the serial scan's %d", stats.MediaBytes, wantStats.MediaBytes)
	}
	if stats.ShippedRows != wantStats.ShippedRows {
		t.Errorf("ShippedRows = %d, want %d", stats.ShippedRows, wantStats.ShippedRows)
	}
	if stats.SpeculativeBytes != 0 {
		t.Errorf("SpeculativeBytes = %d, want 0 (loser cancelled mid-read)", stats.SpeculativeBytes)
	}
	waitGoroutines(t, base)
}

// An exhausted retry budget stops speculation from launching at all:
// the scan serves slow instead of amplifying load.
func TestSpeculationRespectsRetryBudget(t *testing.T) {
	srv := newTestServer(t, true)
	loadTable(t, srv, 7000)
	store := srv.Store()
	store.BaseLatency = 2 * time.Millisecond
	inj := faults.New(3)
	inj.Arm(faults.Point{Kind: faults.DegradedDevice,
		Target: "store/r0/lineitem/seg-000006", Prob: 1, Budget: 1, Severity: 8})
	store.Faults = inj
	pol := resilience.NewPolicy()
	pol.Hedge = false
	pol.Budget = resilience.NewBudget(0, 1)
	pol.Budget.TryAcquire() // drain the startup token: nothing to spend
	store.Resilience = pol

	_, stats, _ := scanAll(t, srv, ScanSpec{Workers: 2})
	if stats.SpeculativeMorsels != 0 {
		t.Errorf("speculated %d morsels with an empty retry budget", stats.SpeculativeMorsels)
	}
	if got := pol.Budget.Exhausted(); got == 0 {
		t.Error("denied speculation did not count toward Budget.Exhausted")
	}
}

// Retry backoff must honor the caller's context: an expired deadline
// surfaces immediately instead of after the full exponential sleep.
func TestBackoffHonorsContext(t *testing.T) {
	o := NewObjectStore()
	o.RetryBase = 200 * time.Millisecond // first backoff alone dwarfs the deadline
	o.Put("k", []byte("x"))
	inj := faults.New(4)
	inj.Arm(faults.Point{Kind: faults.TransientRead, Prob: 1})
	o.Faults = inj

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := o.Get(ctx, "k")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("Get succeeded through an always-firing transient fault")
	}
	if elapsed >= o.RetryBase {
		t.Errorf("Get took %v, want well under the %v backoff: ctx expiry must cut the sleep",
			elapsed, o.RetryBase)
	}
}
