package flow

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/columnar"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/sim"
)

// ParallelStage is implemented by stages that can run as a per-device
// worker pool (morsel-driven parallelism). The runtime replicates the
// stage with NewWorker, feeds the replicas concurrently, and merges
// their outputs back into upstream arrival order before anything is
// sent downstream — so a parallel stage is observationally equivalent
// to the serial one: same output batches, same order, same metered
// totals. Only the makespan changes, via per-lane busy accounting.
type ParallelStage interface {
	Stage
	// NewWorker returns a fresh worker-local stage instance. Instances
	// must not share mutable state with each other or with the receiver;
	// read-only state (predicates, hash tables being probed) may be
	// shared.
	NewWorker() Stage
	// Stateless reports whether Process retains no state across batches.
	// Stateless stages are fed from a shared queue — an idle worker
	// steals the next batch, whichever it is. Stateful stages get a
	// deterministic round-robin share (batch seq mod workers) so each
	// replica's retained state, and everything it later flushes, is
	// independent of goroutine scheduling.
	Stateless() bool
}

// stageWorkers decides how many workers run stage i. A stage runs serial
// unless it implements ParallelStage and the pipeline (or its Placed
// entry) asks for workers; the pool is clamped to the hosting device's
// Parallelism. Snapshotting stages fall back to serial when the run
// checkpoints — an epoch snapshot must be one consistent state, not W
// fragments — and stages with restored state keep the single instance
// the state was installed into.
func (p *Pipeline) stageWorkers(i int) int {
	st := p.Stages[i]
	if _, ok := st.Stage.(ParallelStage); !ok {
		return 1
	}
	w := p.Workers
	if st.Workers > 0 {
		w = st.Workers
	}
	if w <= 1 {
		return 1
	}
	if st.Device != nil && st.Device.Units() < w {
		w = st.Device.Units()
	}
	if _, snap := st.Stage.(Snapshotter); snap && p.Ckpt != nil {
		return 1
	}
	if p.Restore != nil && i < len(p.Restore.Snaps) && p.Restore.Snaps[i] != nil {
		return 1
	}
	return w
}

// workItem is one sequenced batch headed for a worker.
type workItem struct {
	seq int64
	b   *columnar.Batch
}

// stageResult is what a worker (or the dispatcher, for markers and
// dispatch-side faults) hands to the merger: the item's sequence number
// plus everything the serial loop would have done with it in place.
type stageResult struct {
	seq    int64
	outs   []*columnar.Batch
	marker bool
	epoch  int
	err    error
	input  obs.TapeInput
	traced bool
}

// stageRun carries the per-stage runtime state Run hands to the
// parallel executor.
type stageRun struct {
	i    int
	st   Placed
	w    int
	in   *Port
	next *Port // nil when this is the last stage
	sink Emit
	res  *Result
	ts   *obs.StageTape
	fail func(error)
	done <-chan struct{}
	busy []atomic.Int64 // per worker, for the watchdog
}

// runStageParallel executes one stage as a pool of r.w workers.
//
// Shape: the calling goroutine is the dispatcher — it is the port's
// single receiver, assigns arrival sequence numbers, and routes batches
// to workers (shared queue for stateless stages, round-robin for
// stateful ones). Workers process batches into buffered output slices
// and charge their device lane positionally (seq mod workers, not
// goroutine identity, so lane busy totals are schedule-independent). A
// merger goroutine reorders results by sequence number and is the only
// goroutine that touches the downstream port, the sink counters, and
// the stage tape — batches leave a parallel stage in exactly the order
// they arrived, checkpoint markers included.
//
// Credits return as soon as a worker finishes a batch; the reorder
// buffer this admits is bounded by the worker count plus channel
// buffers. Flushes run after all workers join, serially in worker
// order, so stateful replicas drain deterministically.
func (p *Pipeline) runStageParallel(r *stageRun) {
	st := r.st
	last := r.next == nil
	par := st.Stage.(ParallelStage)
	stateless := par.Stateless()

	// out delivers one merged batch downstream. Called only by the
	// merger, then by the flush phase after the merger has joined.
	out := func(b *columnar.Batch) error {
		if last {
			b = b.Compact() // the sink is a dense boundary
			r.res.SinkBatches++
			r.res.SinkRows += int64(b.NumRows())
			r.res.SinkBytes += sim.Bytes(b.ByteSize())
			r.res.BatchesOut[r.i]++
			return r.sink(b)
		}
		r.res.BatchesOut[r.i]++
		return r.next.Send(b)
	}

	offline := func() error {
		if st.Device == nil {
			return nil
		}
		if p.Faults != nil && p.Faults.Fire(faults.DeviceOffline, st.Device.Name) {
			st.Device.SetOffline(true)
		}
		if st.Device.IsOffline() {
			return &StageError{
				Pipeline: p.Name, Stage: st.Stage.Name(),
				Device: st.Device.Name, Err: fabric.ErrDeviceOffline,
			}
		}
		return nil
	}

	if err := offline(); err != nil {
		if r.ts != nil {
			r.ts.FaultInput = len(r.ts.Inputs)
			r.ts.FaultDetail = err.Error()
		}
		r.fail(err)
	} else if st.Device != nil {
		// One kernel install per stage: the replicated workers share the
		// installed kernel, as SSD/NIC engines share programmed logic.
		setup := st.Device.ChargeSetup()
		if r.ts != nil {
			r.ts.Setup = setup
		}
	}

	insts := make([]Stage, r.w)
	for wi := range insts {
		insts[wi] = par.NewWorker()
		if ca, ok := insts[wi].(CancelAware); ok {
			ca.SetCancel(r.done)
		}
	}

	results := make(chan stageResult, 2*r.w+4)
	var shared chan workItem
	var perw []chan workItem
	if stateless {
		shared = make(chan workItem, r.w)
	} else {
		perw = make([]chan workItem, r.w)
		for wi := range perw {
			perw[wi] = make(chan workItem, 2)
		}
	}

	var wwg sync.WaitGroup
	worker := func(wi int, ch <-chan workItem) {
		defer wwg.Done()
		for item := range ch {
			var cost sim.VTime
			if st.ChargeInput && st.Device != nil {
				cost = st.Device.ChargeLane(st.Op, sim.Bytes(item.b.ByteSize()), int(item.seq%int64(r.w)))
			}
			sr := stageResult{seq: item.seq}
			procStart := time.Now()
			r.busy[wi].Store(procStart.UnixNano())
			p.markBusy(1)
			sr.err = insts[wi].Process(item.b, func(ob *columnar.Batch) error {
				sr.outs = append(sr.outs, ob)
				return nil
			})
			p.markBusy(-1)
			r.busy[wi].Store(0)
			p.observeStage(st.Device, procStart)
			if r.ts != nil {
				sr.input = obs.TapeInput{
					Bytes: sim.Bytes(item.b.ByteSize()),
					Cost:  cost,
					Outs:  len(sr.outs),
				}
				sr.traced = true
			}
			r.in.CreditReturn()
			select {
			case results <- sr:
			case <-r.done:
				return
			}
		}
	}
	wwg.Add(r.w)
	for wi := 0; wi < r.w; wi++ {
		if stateless {
			go worker(wi, shared)
		} else {
			go worker(wi, perw[wi])
		}
	}

	var mwg sync.WaitGroup
	mwg.Add(1)
	go func() {
		defer mwg.Done()
		pend := make(map[int64]stageResult, r.w)
		var next int64
		failed := false
		handle := func(sr stageResult) {
			if failed {
				return
			}
			if sr.marker {
				// All pre-marker batches of the epoch have been merged and
				// forwarded, so this is the stage's consistent cut. Parallel
				// pools never host Snapshotter stages under checkpointing
				// (stageWorkers serializes those), so the snapshot is nil.
				p.Ckpt.stageSnap(r.i, sr.epoch, nil)
				if last {
					p.Ckpt.sinkComplete(sr.epoch, r.res.SinkBatches)
				} else if err := r.next.SendMarker(sr.epoch); err != nil {
					r.fail(err)
					failed = true
				}
				return
			}
			if sr.err != nil {
				if r.ts != nil {
					r.ts.FaultInput = len(r.ts.Inputs)
					r.ts.FaultDetail = sr.err.Error()
				}
				r.fail(sr.err)
				failed = true
				return
			}
			for _, ob := range sr.outs {
				if err := out(ob); err != nil {
					r.fail(err)
					failed = true
					return
				}
			}
			if sr.traced {
				r.ts.Inputs = append(r.ts.Inputs, sr.input)
			}
		}
		for {
			select {
			case sr, ok := <-results:
				if !ok {
					return
				}
				pend[sr.seq] = sr
				for {
					n, have := pend[next]
					if !have {
						break
					}
					delete(pend, next)
					next++
					handle(n)
				}
			case <-r.done:
				// Workers and dispatcher select on done when sending, so
				// abandoning the queue cannot block them.
				return
			}
		}
	}()

	// Dispatcher loop: single receiver on the input port.
	toMerger := func(sr stageResult) {
		select {
		case results <- sr:
		case <-r.done:
		}
	}
	var seq int64
	for {
		it, ok, err := r.in.recvItem()
		if err != nil {
			r.fail(err)
			break
		}
		if !ok {
			break
		}
		if it.b == nil {
			toMerger(stageResult{seq: seq, marker: true, epoch: it.epoch})
			seq++
			continue
		}
		r.res.BatchesIn[r.i]++
		// Fault checks stay on the dispatcher so the injector's seeded
		// sequence sees batches in arrival order, not worker order.
		if err := offline(); err != nil {
			r.in.CreditReturn()
			toMerger(stageResult{seq: seq, err: err})
			seq++
			continue
		}
		item := workItem{seq: seq, b: it.b}
		target := shared
		if !stateless {
			target = perw[seq%int64(r.w)]
		}
		seq++
		select {
		case target <- item:
		case <-r.done:
		}
	}
	if stateless {
		close(shared)
	} else {
		for _, ch := range perw {
			close(ch)
		}
	}
	wwg.Wait()
	close(results)
	mwg.Wait()

	// Flush phase: only on a clean end-of-stream (mirrors the serial
	// loop, which skips Flush after any failure).
	select {
	case <-r.done:
	default:
		flushed := 0
		for wi, inst := range insts {
			before := r.res.BatchesOut[r.i]
			r.busy[wi].Store(time.Now().UnixNano())
			p.markBusy(1)
			ferr := inst.Flush(out)
			p.markBusy(-1)
			r.busy[wi].Store(0)
			if ferr != nil {
				r.fail(ferr)
				break
			}
			flushed += int(r.res.BatchesOut[r.i] - before)
		}
		if r.ts != nil {
			r.ts.FlushOuts = flushed
		}
	}
	r.in.flushCredits()
	if r.next != nil {
		r.next.Close()
	}
}
