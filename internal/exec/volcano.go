package exec

import (
	"repro/internal/columnar"
	"repro/internal/expr"
)

// Iterator is the pull-based Volcano interface (batch-at-a-time rather
// than tuple-at-a-time, as in modern variants). Next returns (nil, nil)
// at end of stream. This model is the CPU-centric baseline: every
// operator runs on the compute node's cores and data is pulled up the
// tree.
type Iterator interface {
	Schema() *columnar.Schema
	Next() (*columnar.Batch, error)
}

// SliceScan iterates over pre-materialized batches.
type SliceScan struct {
	schema  *columnar.Schema
	batches []*columnar.Batch
	pos     int
}

// NewSliceScan builds a scan over batches sharing schema.
func NewSliceScan(schema *columnar.Schema, batches []*columnar.Batch) *SliceScan {
	return &SliceScan{schema: schema, batches: batches}
}

// Schema implements Iterator.
func (s *SliceScan) Schema() *columnar.Schema { return s.schema }

// Next implements Iterator.
func (s *SliceScan) Next() (*columnar.Batch, error) {
	if s.pos >= len(s.batches) {
		return nil, nil
	}
	b := s.batches[s.pos]
	s.pos++
	return b, nil
}

// FuncScan adapts a generator function to an Iterator, used to pull from
// sources that produce batches lazily (e.g. buffer-pool reads).
type FuncScan struct {
	schema *columnar.Schema
	next   func() (*columnar.Batch, error)
}

// NewFuncScan wraps next as an iterator.
func NewFuncScan(schema *columnar.Schema, next func() (*columnar.Batch, error)) *FuncScan {
	return &FuncScan{schema: schema, next: next}
}

// Schema implements Iterator.
func (s *FuncScan) Schema() *columnar.Schema { return s.schema }

// Next implements Iterator.
func (s *FuncScan) Next() (*columnar.Batch, error) { return s.next() }

// FilterIter drops rows failing the predicate.
type FilterIter struct {
	In   Iterator
	Pred expr.Predicate
}

// Schema implements Iterator.
func (it *FilterIter) Schema() *columnar.Schema { return it.In.Schema() }

// Next implements Iterator.
func (it *FilterIter) Next() (*columnar.Batch, error) {
	for {
		b, err := it.In.Next()
		if err != nil || b == nil {
			return nil, err
		}
		out := b.Filter(it.Pred.Eval(b))
		if out.NumRows() > 0 {
			return out, nil
		}
	}
}

// ProjectIter keeps only the listed columns.
type ProjectIter struct {
	In      Iterator
	Columns []int
}

// Schema implements Iterator.
func (it *ProjectIter) Schema() *columnar.Schema { return it.In.Schema().Project(it.Columns) }

// Next implements Iterator.
func (it *ProjectIter) Next() (*columnar.Batch, error) {
	b, err := it.In.Next()
	if err != nil || b == nil {
		return nil, err
	}
	return b.Project(it.Columns), nil
}

// HashJoinIter is the blocking Volcano join: the build side is drained
// into a hash table on the first Next, then the probe side streams.
// Workers > 1 builds a partitioned table in parallel (same matches,
// same order; see PartitionedHashTable).
type HashJoinIter struct {
	Build    Iterator
	Probe    Iterator
	BuildKey int
	ProbeKey int
	Workers  int

	table JoinTable
}

// Schema implements Iterator.
func (it *HashJoinIter) Schema() *columnar.Schema {
	return it.Probe.Schema().Concat(it.Build.Schema())
}

// Next implements Iterator.
func (it *HashJoinIter) Next() (*columnar.Batch, error) {
	if it.table == nil {
		if it.Workers > 1 {
			it.table = NewPartitionedHashTable(it.Build.Schema(), it.BuildKey, it.Workers)
		} else {
			it.table = NewHashTable(it.Build.Schema(), it.BuildKey)
		}
		for {
			b, err := it.Build.Next()
			if err != nil {
				return nil, err
			}
			if b == nil {
				break
			}
			it.table.Build(b)
		}
	}
	for {
		b, err := it.Probe.Next()
		if err != nil || b == nil {
			return nil, err
		}
		out := it.table.Probe(b, it.ProbeKey)
		if out.NumRows() > 0 {
			return out, nil
		}
	}
}

// AggIter drains its input into a full aggregation and emits one result
// batch.
type AggIter struct {
	In   Iterator
	Spec expr.GroupBy

	done bool
}

// Schema implements Iterator.
func (it *AggIter) Schema() *columnar.Schema { return it.Spec.OutputSchema(it.In.Schema()) }

// Next implements Iterator.
func (it *AggIter) Next() (*columnar.Batch, error) {
	if it.done {
		return nil, nil
	}
	agg := expr.NewFinalAggregator(it.Spec, it.In.Schema())
	for {
		b, err := it.In.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		agg.AddRaw(b)
	}
	it.done = true
	return agg.Result(), nil
}

// SortIter drains and sorts by an int64 column ascending (NULLs first).
type SortIter struct {
	In    Iterator
	ByCol int

	done bool
}

// Schema implements Iterator.
func (it *SortIter) Schema() *columnar.Schema { return it.In.Schema() }

// Next implements Iterator.
func (it *SortIter) Next() (*columnar.Batch, error) {
	if it.done {
		return nil, nil
	}
	stage := &SortStage{ByCol: it.ByCol}
	for {
		b, err := it.In.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if err := stage.Process(b, nil); err != nil {
			return nil, err
		}
	}
	it.done = true
	var out *columnar.Batch
	if err := stage.Flush(func(b *columnar.Batch) error { out = b; return nil }); err != nil {
		return nil, err
	}
	return out, nil
}

// LimitIter stops after N rows.
type LimitIter struct {
	In Iterator
	N  int

	seen int
}

// Schema implements Iterator.
func (it *LimitIter) Schema() *columnar.Schema { return it.In.Schema() }

// Next implements Iterator.
func (it *LimitIter) Next() (*columnar.Batch, error) {
	if it.seen >= it.N {
		return nil, nil
	}
	b, err := it.In.Next()
	if err != nil || b == nil {
		return nil, err
	}
	remain := it.N - it.seen
	if b.NumRows() > remain {
		b = b.Slice(0, remain)
	}
	it.seen += b.NumRows()
	return b, nil
}

// Drain pulls an iterator to completion, returning all batches.
func Drain(it Iterator) ([]*columnar.Batch, error) {
	var out []*columnar.Batch
	for {
		b, err := it.Next()
		if err != nil {
			return out, err
		}
		if b == nil {
			return out, nil
		}
		out = append(out, b)
	}
}
