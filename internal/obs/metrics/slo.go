package metrics

import (
	"sync"
	"time"
)

// SLOTracker turns a declared latency objective ("p99 under 40ms",
// stated as target latency + good fraction) into a burn rate the
// scheduler can read while load is still arriving. Each observation is
// classified good (latency <= target) or bad; the burn rate is the
// observed bad fraction divided by the error budget fraction:
//
//	burn = (bad / (good+bad)) / (1 - objective)
//
// Burn 1 means the window is consuming budget exactly as fast as the
// objective allows; burn 2 means at twice that rate; sustained burn > 1
// means the SLO will be missed if nothing changes — the standard
// multi-window burn-rate alerting quantity, computed over a slot ring
// like RateMeter so old observations age out. A nil *SLOTracker is a
// no-op, and sched treats burn shedding as disabled when its tracker
// is nil, keeping the nil-is-off discipline end to end.
type SLOTracker struct {
	mu      sync.Mutex
	target  time.Duration
	budget  float64 // error budget fraction, 1 - objective
	slotDur time.Duration
	slots   []sloSlot
	now     func() time.Time
}

type sloSlot struct {
	epoch     int64
	good, bad int64
}

func newSLOTracker(target time.Duration, objective float64, window time.Duration, slots int, now func() time.Time) *SLOTracker {
	if objective <= 0 || objective >= 1 {
		objective = 0.99
	}
	if target <= 0 {
		target = time.Second
	}
	if slots < 1 {
		slots = 1
	}
	if window <= 0 {
		window = 30 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &SLOTracker{
		target:  target,
		budget:  1 - objective,
		slotDur: window / time.Duration(slots),
		slots:   make([]sloSlot, slots),
		now:     now,
	}
}

// NewSLOTracker builds a standalone tracker (30s window over 15 slots)
// for callers that hold one directly rather than through a registry —
// the scheduler's shedding input, for instance.
func NewSLOTracker(target time.Duration, objective float64) *SLOTracker {
	return newSLOTracker(target, objective, 30*time.Second, 15, time.Now)
}

// SetNow pins the tracker's clock; tests only, before first use.
func (s *SLOTracker) SetNow(now func() time.Time) {
	if s == nil || now == nil {
		return
	}
	s.mu.Lock()
	s.now = now
	s.mu.Unlock()
}

// Target returns the declared latency objective.
func (s *SLOTracker) Target() time.Duration {
	if s == nil {
		return 0
	}
	return s.target
}

// Observe classifies one request latency against the target.
func (s *SLOTracker) Observe(latency time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	epoch := s.now().UnixNano() / int64(s.slotDur)
	sl := &s.slots[epoch%int64(len(s.slots))]
	if sl.epoch != epoch {
		sl.epoch = epoch
		sl.good, sl.bad = 0, 0
	}
	if latency <= s.target {
		sl.good++
	} else {
		sl.bad++
	}
	s.mu.Unlock()
}

// BurnRate returns the window's budget burn rate (0 when the window is
// empty). Values >= 1 mean the error budget is being consumed at least
// as fast as the objective tolerates.
func (s *SLOTracker) BurnRate() float64 {
	good, bad := s.Window()
	if good+bad == 0 {
		return 0
	}
	frac := float64(bad) / float64(good+bad)
	return frac / s.budget
}

// Window returns the live window's good/bad counts.
func (s *SLOTracker) Window() (good, bad int64) {
	if s == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	epoch := s.now().UnixNano() / int64(s.slotDur)
	oldest := epoch - int64(len(s.slots)) + 1
	for i := range s.slots {
		if s.slots[i].epoch >= oldest && s.slots[i].epoch <= epoch {
			good += s.slots[i].good
			bad += s.slots[i].bad
		}
	}
	return good, bad
}
