package workload

import (
	"testing"

	"repro/internal/plan"
)

func TestGenLineitemShape(t *testing.T) {
	cfg := DefaultLineitemConfig(1000)
	b := GenLineitem(cfg)
	if b.NumRows() != 1000 || b.NumCols() != 9 {
		t.Fatalf("shape = %dx%d", b.NumRows(), b.NumCols())
	}
	// Domains.
	qty := b.Col(LQuantity).Int64s()
	for _, q := range qty {
		if q < 1 || q > 50 {
			t.Fatalf("quantity %d out of [1,50]", q)
		}
	}
	ship := b.Col(LShipDate).Int64s()
	for _, s := range ship {
		if s < 0 || s >= cfg.ShipDays {
			t.Fatalf("shipdate %d out of range", s)
		}
	}
	flags := map[string]bool{}
	for _, f := range b.Col(LReturnFlag).Strings() {
		flags[f] = true
	}
	if len(flags) != 3 {
		t.Errorf("return flags = %v, want 3 distinct", flags)
	}
}

func TestGenLineitemDeterministic(t *testing.T) {
	cfg := DefaultLineitemConfig(200)
	a, b := GenLineitem(cfg), GenLineitem(cfg)
	for i := 0; i < a.NumRows(); i += 37 {
		for c := 0; c < a.NumCols(); c++ {
			if !a.Col(c).Value(i).Equal(b.Col(c).Value(i)) {
				t.Fatalf("row %d col %d differs across runs", i, c)
			}
		}
	}
	cfg2 := cfg
	cfg2.Seed = 43
	c := GenLineitem(cfg2)
	same := true
	for i := 0; i < 20; i++ {
		if !a.Col(LOrderKey).Value(i).Equal(c.Col(LOrderKey).Value(i)) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestPartKeySkew(t *testing.T) {
	cfg := DefaultLineitemConfig(20000)
	b := GenLineitem(cfg)
	counts := map[int64]int{}
	for _, p := range b.Col(LPartKey).Int64s() {
		counts[p]++
	}
	// Zipf: part 0 must be clearly hotter than average.
	avg := float64(cfg.Rows) / float64(cfg.Parts)
	if float64(counts[0]) < 10*avg {
		t.Errorf("part 0 count %d not skewed (avg %.1f)", counts[0], avg)
	}
}

func TestLineitemStats(t *testing.T) {
	cfg := DefaultLineitemConfig(5000)
	st := LineitemStats(cfg)
	if st.Rows != 5000 {
		t.Errorf("Rows = %d", st.Rows)
	}
	if st.Distinct[LReturnFlag] != 3 || !st.IntBounds[LQuantity] {
		t.Error("stats fields wrong")
	}
	if st.RowBytes(nil) <= 0 {
		t.Error("RowBytes <= 0")
	}
}

func TestGenOrders(t *testing.T) {
	b := GenOrders(500, 7)
	if b.NumRows() != 500 {
		t.Fatalf("rows = %d", b.NumRows())
	}
	keys := b.Col(OOrderKey).Int64s()
	for i, k := range keys {
		if k != int64(i) {
			t.Fatalf("order keys not dense: key[%d]=%d", i, k)
		}
	}
}

func TestGenKV(t *testing.T) {
	uni := GenKV(KVConfig{Rows: 10000, Keys: 100, Seed: 1})
	skew := GenKV(KVConfig{Rows: 10000, Keys: 100, ZipfSkew: 1.2, Seed: 1})
	countTop := func(b interface{}) {}
	_ = countTop
	count := func(ks []int64) int {
		c := 0
		for _, k := range ks {
			if k == 0 {
				c++
			}
		}
		return c
	}
	u0 := count(uni.Col(0).Int64s())
	s0 := count(skew.Col(0).Int64s())
	if s0 < 3*u0 {
		t.Errorf("zipf key 0 count %d not skewed vs uniform %d", s0, u0)
	}
	for _, k := range uni.Col(0).Int64s() {
		if k < 0 || k >= 100 {
			t.Fatalf("key %d out of range", k)
		}
	}
}

func TestSelectivityFilter(t *testing.T) {
	cfg := DefaultLineitemConfig(50000)
	b := GenLineitem(cfg)
	for _, frac := range []float64{0.01, 0.1, 0.5, 1.0} {
		p := SelectivityFilter(cfg, frac)
		got := float64(p.Eval(b).Count()) / float64(b.NumRows())
		if got < frac*0.7-0.005 || got > frac*1.3+0.005 {
			t.Errorf("frac %.2f: actual selectivity %.4f", frac, got)
		}
	}
	// Degenerate fractions clamp.
	if SelectivityFilter(cfg, 0) == nil || SelectivityFilter(cfg, 2) == nil {
		t.Error("degenerate fractions returned nil")
	}
}

func TestSelectivityEstimateAgreesWithActual(t *testing.T) {
	cfg := DefaultLineitemConfig(50000)
	st := LineitemStats(cfg)
	p := SelectivityFilter(cfg, 0.1)
	est := plan.EstimateSelectivity(p, st)
	if est < 0.05 || est > 0.2 {
		t.Errorf("estimated selectivity %.4f for 10%% filter", est)
	}
}

func TestQueryTemplates(t *testing.T) {
	ps := PricingSummary()
	if len(ps.GroupCols) != 1 || ps.GroupCols[0] != LReturnFlag || len(ps.Aggs) != 4 {
		t.Error("PricingSummary shape wrong")
	}
	pv := PartVolume()
	if pv.GroupCols[0] != LPartKey {
		t.Error("PartVolume shape wrong")
	}
	if DefaultLineitemConfig(10).Describe() == "" {
		t.Error("Describe empty")
	}
}
