package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/workload"
)

// E19Row is one fault-rate point of the availability sweep.
type E19Row struct {
	Rate        float64
	DFOK        int // data-flow queries that succeeded with correct rows
	VoOK        int // volcano queries that succeeded with correct rows
	Total       int // queries attempted per engine
	Retries     int64
	Fallbacks   int64
	Failovers   int64
	DFTime      sim.VTime // mean per-query makespan incl. recovery waste
	VoTime      sim.VTime // mean per-query makespan over successes
	DFInflation float64   // DFTime relative to the zero-fault bucket
	VoInflation float64
}

// E19Result carries the availability comparison.
type E19Result struct {
	Table *Table
	Rows  []E19Row
	// Schedules holds the data-flow injector's rendered fault schedule
	// per rate bucket, and VoSchedules the volcano injector's. With a
	// fixed seed both are byte-identical across runs for every bucket
	// below e19KillRate. At the kill rates the data-flow engine aborts
	// an attempt mid-scan, and how far the canceled scan got (and hence
	// how many fault draws it made) depends on goroutine scheduling —
	// the volcano schedule stays byte-identical even there.
	Schedules   []string
	VoSchedules []string
}

// e19Seed fixes the fault schedule so the sweep is reproducible.
const e19Seed = 0xE19

// e19KillRate is the fault rate from which the sweep also kills an
// accelerator mid-query.
const e19KillRate = 0.02

// E19Availability measures availability under injected faults, the
// robustness counterpart to E10: the same query mix runs on the
// data-flow engine (replicated segments, bounded retry, device
// failover) and on the detect-only Volcano baseline (one copy, no
// retry) while storage faults fire at increasing rates. At the higher
// rates an accelerator is additionally killed mid-sweep, forcing the
// data-flow engine to fail over onto a degraded placement. The engine
// with a recovery path keeps answering — at a measurable makespan
// cost — while the baseline starts losing queries.
func E19Availability(rows int) (*E19Result, error) {
	rates := []float64{0, 0.005, 0.01, 0.02, 0.05}
	const trials = 4
	// From e19KillRate on, the sweep also kills the compute-node NIC the
	// optimizer likes for pre-aggregation, exercising failover.

	cfg := workload.DefaultLineitemConfig(rows)
	data := workload.GenLineitem(cfg)
	queries := []*plan.Query{
		plan.NewQuery("lineitem").WithCount(),
		plan.NewQuery("lineitem").WithGroupBy(workload.PricingSummary()),
		plan.NewQuery("lineitem").
			WithFilter(workload.SelectivityFilter(cfg, 0.1)).
			WithProjection(workload.LExtendedPrice),
	}
	total := trials * len(queries)
	// ~24 segments regardless of scale, so every query makes many
	// independent fault draws.
	segRows := rows/24 + 1

	buildDF := func() (*core.DataFlowEngine, error) {
		df := core.NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
		df.Storage.Store().SetReplicas(2)
		df.Storage.Store().RetryBase = 0
		df.Storage.SegmentRows = segRows
		if err := df.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
			return nil, err
		}
		if err := df.Load("lineitem", data); err != nil {
			return nil, err
		}
		return df, nil
	}
	buildVo := func() (*core.VolcanoEngine, error) {
		// The pool is kept smaller than the table so later trials keep
		// fetching (and keep drawing faults) instead of hiding behind
		// cached pages.
		vo := core.NewVolcanoEngine(fabric.NewCluster(fabric.LegacyClusterConfig()), sim.MB)
		vo.Storage.SegmentRows = segRows
		vo.Storage.Store().MaxRetries = 0 // detect-only: faults surface
		if err := vo.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
			return nil, err
		}
		if err := vo.Load("lineitem", data); err != nil {
			return nil, err
		}
		return vo, nil
	}

	armStorage := func(in *faults.Injector, rate float64) {
		in.Arm(faults.Point{Kind: faults.TransientRead, Prob: rate})
		in.Arm(faults.Point{Kind: faults.CorruptBlob, Prob: rate / 2})
		in.Arm(faults.Point{Kind: faults.ObjectMissing, Prob: rate / 2})
	}

	res := &E19Result{Table: &Table{
		ID:    "E19",
		Title: "Availability under injected faults: recovering data flow vs detect-only Volcano",
		Header: []string{"fault rate", "df ok", "volcano ok", "retries",
			"fallbacks", "failovers", "df time x", "vo time x"},
		Notes: "time x = mean per-query makespan (incl. recovery waste) relative to the fault-free bucket; " +
			fmt.Sprintf("rates >= %g also kill an accelerator mid-sweep; ", e19KillRate) +
			"the volcano mean covers only surviving queries, which ran mostly on pool pages warmed by failed attempts",
	}}

	// expected[qi] is the reference row histogram, captured from the
	// fault-free bucket; every later success must reproduce it exactly.
	expected := make([]map[string]int, len(queries))
	var dfBase, voBase sim.VTime
	for _, rate := range rates {
		df, err := buildDF()
		if err != nil {
			return nil, err
		}
		inj := faults.New(e19Seed)
		armStorage(inj, rate)
		if rate >= e19KillRate {
			inj.Arm(faults.Point{Kind: faults.DeviceOffline,
				Target: fabric.ComputeDev(0, "nic"), Prob: 1, Budget: 1})
		}
		df.Storage.Store().Faults = inj
		df.Faults = inj

		vo, err := buildVo()
		if err != nil {
			return nil, err
		}
		voInj := faults.New(e19Seed)
		armStorage(voInj, rate)
		vo.Storage.Store().Faults = voInj

		row := E19Row{Rate: rate, Total: total}
		var dfTime, voTime sim.VTime
		for trial := 0; trial < trials; trial++ {
			for qi, q := range queries {
				r, err := df.Execute(context.Background(), q)
				switch {
				case err != nil && rate == 0:
					return nil, fmt.Errorf("experiments: E19 fault-free data-flow run failed: %w", err)
				case err == nil:
					h := e19Histogram(r)
					if expected[qi] == nil {
						expected[qi] = h
					} else if !e19SameHist(h, expected[qi]) {
						return nil, fmt.Errorf("experiments: E19 data-flow returned wrong rows at rate %g", rate)
					}
					row.DFOK++
					row.Retries += r.Stats.Retries
					row.Fallbacks += r.Stats.ReplicaFallbacks
					row.Failovers += int64(r.Stats.Failovers)
					dfTime += r.Stats.SimTime + r.Stats.RecoveryTime
				}

				vr, err := vo.Execute(context.Background(), q)
				switch {
				case err != nil && rate == 0:
					return nil, fmt.Errorf("experiments: E19 fault-free volcano run failed: %w", err)
				case err == nil:
					if expected[qi] != nil && !e19SameHist(e19Histogram(vr), expected[qi]) {
						return nil, fmt.Errorf("experiments: E19 volcano returned wrong rows at rate %g", rate)
					}
					row.VoOK++
					voTime += vr.Stats.SimTime
				}
			}
		}
		if row.DFOK > 0 {
			row.DFTime = dfTime / sim.VTime(row.DFOK)
		}
		if row.VoOK > 0 {
			row.VoTime = voTime / sim.VTime(row.VoOK)
		}
		if rate == 0 {
			dfBase, voBase = row.DFTime, row.VoTime
		}
		if dfBase > 0 && row.DFOK > 0 {
			row.DFInflation = float64(row.DFTime) / float64(dfBase)
		}
		if voBase > 0 && row.VoOK > 0 {
			row.VoInflation = float64(row.VoTime) / float64(voBase)
		}
		res.Rows = append(res.Rows, row)
		res.Schedules = append(res.Schedules, inj.Schedule())
		res.VoSchedules = append(res.VoSchedules, voInj.Schedule())

		voX := "-"
		if row.VoOK > 0 {
			voX = f(row.VoInflation)
		}
		res.Table.AddRow(f(rate),
			fmt.Sprintf("%d/%d", row.DFOK, total),
			fmt.Sprintf("%d/%d", row.VoOK, total),
			d(row.Retries), d(row.Fallbacks), d(row.Failovers),
			f(row.DFInflation), voX)
		res.Table.SetMetric(fmt.Sprintf("df_ok@%g", rate), float64(row.DFOK)/float64(total))
		res.Table.SetMetric(fmt.Sprintf("vo_ok@%g", rate), float64(row.VoOK)/float64(total))
	}
	return res, nil
}

// e19Histogram counts result rows by their rendered form, for an
// order-insensitive comparison that also catches duplicated rows.
func e19Histogram(r *core.Result) map[string]int {
	out := make(map[string]int)
	for _, b := range r.Batches {
		for i := 0; i < b.NumRows(); i++ {
			var key string
			for _, v := range b.Row(i) {
				key += v.String() + "\x00"
			}
			out[key]++
		}
	}
	return out
}

func e19SameHist(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, n := range a {
		if b[k] != n {
			return false
		}
	}
	return true
}
