// Package expr defines the predicate and aggregation vocabulary shared by
// every processing site in the fabric. The same predicate tree can be
// evaluated by the CPU operators, the in-storage processor, a smart NIC,
// or the near-memory accelerator — the paper's point that operators must
// be redesigned to run "on data as it flows" wherever the planner places
// them (Section 1).
package expr

import (
	"fmt"
	"strings"

	"repro/internal/columnar"
)

// CmpOp is a comparison operator.
type CmpOp uint8

// Comparison operators.
const (
	Eq CmpOp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

// String renders the operator in SQL style.
func (o CmpOp) String() string {
	switch o {
	case Eq:
		return "="
	case Ne:
		return "<>"
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return fmt.Sprintf("CmpOp(%d)", uint8(o))
}

// Predicate is a boolean expression over one batch row. Eval returns a
// selection bitmap with one bit per row; NULL comparisons are false
// (SQL three-valued logic collapsed to the filter's needs).
type Predicate interface {
	// Eval computes the selection bitmap for the batch.
	Eval(b *columnar.Batch) *columnar.Bitmap
	// Columns returns the batch column indices the predicate reads.
	Columns() []int
	// String renders the predicate in SQL style.
	String() string
}

// Cmp compares column Col against a constant.
type Cmp struct {
	Col int
	Op  CmpOp
	Val columnar.Value
}

// NewCmp builds a comparison predicate.
func NewCmp(col int, op CmpOp, val columnar.Value) *Cmp {
	return &Cmp{Col: col, Op: op, Val: val}
}

// Eval implements Predicate.
func (c *Cmp) Eval(b *columnar.Batch) *columnar.Bitmap {
	n := b.NumRows()
	sel := columnar.NewBitmap(n)
	col := b.Col(c.Col)
	switch c.Val.Type {
	case columnar.Int64:
		vals := col.Int64s()
		want := c.Val.I
		for i, v := range vals {
			if !col.IsNull(i) && cmpInt(v, want, c.Op) {
				sel.Set(i)
			}
		}
	case columnar.Float64:
		vals := col.Float64s()
		want := c.Val.F
		for i, v := range vals {
			if !col.IsNull(i) && cmpFloat(v, want, c.Op) {
				sel.Set(i)
			}
		}
	case columnar.String:
		vals := col.Strings()
		want := c.Val.S
		for i, v := range vals {
			if !col.IsNull(i) && cmpString(v, want, c.Op) {
				sel.Set(i)
			}
		}
	case columnar.Bool:
		vals := col.Bools()
		want := c.Val.B
		for i, v := range vals {
			if col.IsNull(i) {
				continue
			}
			match := v == want
			if c.Op == Ne {
				match = !match
			} else if c.Op != Eq {
				match = false
			}
			if match {
				sel.Set(i)
			}
		}
	}
	return sel
}

func cmpInt(a, b int64, op CmpOp) bool {
	switch op {
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	}
	return false
}

func cmpFloat(a, b float64, op CmpOp) bool {
	switch op {
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	}
	return false
}

func cmpString(a, b string, op CmpOp) bool {
	switch op {
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	}
	return false
}

// Columns implements Predicate.
func (c *Cmp) Columns() []int { return []int{c.Col} }

// String implements Predicate.
func (c *Cmp) String() string {
	return fmt.Sprintf("col%d %s %s", c.Col, c.Op, c.Val)
}

// Between selects rows with Lo <= col <= Hi over int64 columns, the
// zone-map-friendly range predicate.
type Between struct {
	Col    int
	Lo, Hi int64
}

// NewBetween builds a range predicate.
func NewBetween(col int, lo, hi int64) *Between { return &Between{Col: col, Lo: lo, Hi: hi} }

// Eval implements Predicate.
func (p *Between) Eval(b *columnar.Batch) *columnar.Bitmap {
	col := b.Col(p.Col)
	sel := columnar.NewBitmap(b.NumRows())
	for i, v := range col.Int64s() {
		if !col.IsNull(i) && v >= p.Lo && v <= p.Hi {
			sel.Set(i)
		}
	}
	return sel
}

// Columns implements Predicate.
func (p *Between) Columns() []int { return []int{p.Col} }

// String implements Predicate.
func (p *Between) String() string {
	return fmt.Sprintf("col%d BETWEEN %d AND %d", p.Col, p.Lo, p.Hi)
}

// Like selects string rows containing Pattern as a substring, the
// simplified LIKE '%pattern%' the paper's AQUA example pushes to an
// accelerator (Section 3.3).
type Like struct {
	Col     int
	Pattern string
}

// NewLike builds a substring-match predicate.
func NewLike(col int, pattern string) *Like { return &Like{Col: col, Pattern: pattern} }

// Eval implements Predicate.
func (p *Like) Eval(b *columnar.Batch) *columnar.Bitmap {
	col := b.Col(p.Col)
	sel := columnar.NewBitmap(b.NumRows())
	for i, v := range col.Strings() {
		if !col.IsNull(i) && strings.Contains(v, p.Pattern) {
			sel.Set(i)
		}
	}
	return sel
}

// Columns implements Predicate.
func (p *Like) Columns() []int { return []int{p.Col} }

// String implements Predicate.
func (p *Like) String() string {
	return fmt.Sprintf("col%d LIKE '%%%s%%'", p.Col, p.Pattern)
}

// In selects rows whose column value equals any of Vals. All values
// must share the column's type; on low-cardinality columns the encoded
// kernels translate the list into a dictionary code-set once and compare
// codes.
type In struct {
	Col  int
	Vals []columnar.Value
}

// NewIn builds a set-membership predicate.
func NewIn(col int, vals ...columnar.Value) *In { return &In{Col: col, Vals: vals} }

// Eval implements Predicate.
func (p *In) Eval(b *columnar.Batch) *columnar.Bitmap {
	col := b.Col(p.Col)
	sel := columnar.NewBitmap(b.NumRows())
	if len(p.Vals) == 0 {
		return sel
	}
	switch p.Vals[0].Type {
	case columnar.Int64:
		want := make(map[int64]struct{}, len(p.Vals))
		for _, v := range p.Vals {
			want[v.I] = struct{}{}
		}
		for i, v := range col.Int64s() {
			if _, ok := want[v]; ok && !col.IsNull(i) {
				sel.Set(i)
			}
		}
	case columnar.Float64:
		want := make(map[float64]struct{}, len(p.Vals))
		for _, v := range p.Vals {
			want[v.F] = struct{}{}
		}
		for i, v := range col.Float64s() {
			if _, ok := want[v]; ok && !col.IsNull(i) {
				sel.Set(i)
			}
		}
	case columnar.String:
		want := make(map[string]struct{}, len(p.Vals))
		for _, v := range p.Vals {
			want[v.S] = struct{}{}
		}
		for i, v := range col.Strings() {
			if _, ok := want[v]; ok && !col.IsNull(i) {
				sel.Set(i)
			}
		}
	}
	return sel
}

// Columns implements Predicate.
func (p *In) Columns() []int { return []int{p.Col} }

// String implements Predicate.
func (p *In) String() string {
	parts := make([]string, len(p.Vals))
	for i, v := range p.Vals {
		parts[i] = v.String()
	}
	return fmt.Sprintf("col%d IN (%s)", p.Col, strings.Join(parts, ", "))
}

// And conjoins predicates.
type And struct{ Preds []Predicate }

// NewAnd builds a conjunction.
func NewAnd(preds ...Predicate) *And { return &And{Preds: preds} }

// Eval implements Predicate.
func (p *And) Eval(b *columnar.Batch) *columnar.Bitmap {
	if len(p.Preds) == 0 {
		sel := columnar.NewBitmap(b.NumRows())
		for i := 0; i < b.NumRows(); i++ {
			sel.Set(i)
		}
		return sel
	}
	sel := p.Preds[0].Eval(b)
	for _, sub := range p.Preds[1:] {
		sel.And(sub.Eval(b))
	}
	return sel
}

// Columns implements Predicate.
func (p *And) Columns() []int { return unionColumns(p.Preds) }

// String implements Predicate.
func (p *And) String() string { return joinPreds(p.Preds, " AND ") }

// Or disjoins predicates.
type Or struct{ Preds []Predicate }

// NewOr builds a disjunction.
func NewOr(preds ...Predicate) *Or { return &Or{Preds: preds} }

// Eval implements Predicate.
func (p *Or) Eval(b *columnar.Batch) *columnar.Bitmap {
	sel := columnar.NewBitmap(b.NumRows())
	for _, sub := range p.Preds {
		sel.Or(sub.Eval(b))
	}
	return sel
}

// Columns implements Predicate.
func (p *Or) Columns() []int { return unionColumns(p.Preds) }

// String implements Predicate.
func (p *Or) String() string { return joinPreds(p.Preds, " OR ") }

// Not negates a predicate. NULL handling note: Not flips the selection
// bitmap, so rows whose comparison was NULL (unselected) become selected;
// the engine treats filters as bitmap algebra rather than full
// three-valued logic.
type Not struct{ Pred Predicate }

// NewNot builds a negation.
func NewNot(pred Predicate) *Not { return &Not{Pred: pred} }

// Eval implements Predicate.
func (p *Not) Eval(b *columnar.Batch) *columnar.Bitmap {
	sel := p.Pred.Eval(b)
	out := columnar.NewBitmap(b.NumRows())
	for i := 0; i < b.NumRows(); i++ {
		if !sel.Get(i) {
			out.Set(i)
		}
	}
	return out
}

// Columns implements Predicate.
func (p *Not) Columns() []int { return p.Pred.Columns() }

// String implements Predicate.
func (p *Not) String() string { return "NOT (" + p.Pred.String() + ")" }

func unionColumns(preds []Predicate) []int {
	seen := map[int]bool{}
	var out []int
	for _, p := range preds {
		for _, c := range p.Columns() {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

func joinPreds(preds []Predicate, sep string) string {
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = "(" + p.String() + ")"
	}
	return strings.Join(parts, sep)
}

// Rebase returns a copy of p with every column index translated through
// m. Planners use it when a predicate written against a table schema is
// evaluated against a batch holding only a subset of the columns.
func Rebase(p Predicate, m func(int) int) Predicate {
	switch t := p.(type) {
	case *Cmp:
		return &Cmp{Col: m(t.Col), Op: t.Op, Val: t.Val}
	case *Between:
		return &Between{Col: m(t.Col), Lo: t.Lo, Hi: t.Hi}
	case *Like:
		return &Like{Col: m(t.Col), Pattern: t.Pattern}
	case *In:
		return &In{Col: m(t.Col), Vals: t.Vals}
	case *And:
		out := &And{Preds: make([]Predicate, len(t.Preds))}
		for i, sub := range t.Preds {
			out.Preds[i] = Rebase(sub, m)
		}
		return out
	case *Or:
		out := &Or{Preds: make([]Predicate, len(t.Preds))}
		for i, sub := range t.Preds {
			out.Preds[i] = Rebase(sub, m)
		}
		return out
	case *Not:
		return &Not{Pred: Rebase(t.Pred, m)}
	}
	panic(fmt.Sprintf("expr: Rebase does not know %T", p))
}

// IntRange reports the tightest [lo, hi] int64 window the predicate can
// accept on the given column, for zone-map pruning. ok is false when the
// predicate cannot bound that column (the segment must then be read).
func IntRange(p Predicate, col int) (lo, hi int64, ok bool) {
	const (
		minI = -int64(^uint64(0)>>1) - 1
		maxI = int64(^uint64(0) >> 1)
	)
	switch t := p.(type) {
	case *Between:
		if t.Col == col {
			return t.Lo, t.Hi, true
		}
	case *Cmp:
		if t.Col != col || t.Val.Type != columnar.Int64 {
			return 0, 0, false
		}
		switch t.Op {
		case Eq:
			return t.Val.I, t.Val.I, true
		case Lt:
			return minI, t.Val.I - 1, true
		case Le:
			return minI, t.Val.I, true
		case Gt:
			return t.Val.I + 1, maxI, true
		case Ge:
			return t.Val.I, maxI, true
		}
	case *In:
		if t.Col != col || len(t.Vals) == 0 || t.Vals[0].Type != columnar.Int64 {
			return 0, 0, false
		}
		lo, hi = t.Vals[0].I, t.Vals[0].I
		for _, v := range t.Vals[1:] {
			if v.I < lo {
				lo = v.I
			}
			if v.I > hi {
				hi = v.I
			}
		}
		return lo, hi, true
	case *And:
		lo, hi = minI, maxI
		found := false
		for _, sub := range t.Preds {
			if l, h, sok := IntRange(sub, col); sok {
				found = true
				if l > lo {
					lo = l
				}
				if h < hi {
					hi = h
				}
			}
		}
		return lo, hi, found
	}
	return 0, 0, false
}
