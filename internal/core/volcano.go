package core

import (
	"fmt"
	"sync"

	"repro/internal/bufferpool"
	"repro/internal/columnar"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/fabric"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/storage"
)

// VolcanoEngine is the CPU-centric baseline the paper argues against: a
// pull-based iterator engine that fetches whole segments through a
// buffer pool into compute-node memory and evaluates every operator on
// the cores. The storage layer only stores; the NICs only move bytes;
// all reduction happens at the end of the data path (Figure 1).
type VolcanoEngine struct {
	Cluster *fabric.Cluster
	Storage *storage.Server
	Pool    *bufferpool.Pool

	node int
	cpu  *fabric.Device
	dram string

	mu      sync.Mutex
	stats   map[string]plan.TableStats
	fetches int64
}

// NewVolcanoEngine wires the baseline onto a cluster with the given
// buffer-pool capacity on compute node 0.
func NewVolcanoEngine(c *fabric.Cluster, poolBytes sim.Bytes) *VolcanoEngine {
	media := c.MustDevice(fabric.DevStorageMed)
	proc := c.StorageProc()
	link := c.LinkBetween(fabric.DevStorageMed, fabric.DevStorageProc)
	e := &VolcanoEngine{
		Cluster: c,
		Storage: storage.NewServer(storage.NewObjectStore(), media, proc, link),
		node:    0,
		cpu:     c.ComputeCPU(0),
		dram:    fabric.ComputeDev(0, "dram"),
		stats:   make(map[string]plan.TableStats),
	}
	e.Pool = bufferpool.New(poolBytes, e.fetchPage)
	return e
}

// fetchPage loads one segment blob from disaggregated storage into the
// compute node's memory, charging the media and the whole network path —
// this is the legacy data path of Figure 1 stretched across the cloud.
func (e *VolcanoEngine) fetchPage(id bufferpool.PageID) ([]byte, error) {
	blob, err := e.Storage.Store().Get(string(id))
	if err != nil {
		return nil, err
	}
	// Verify before caching: a read that came back corrupt must fail the
	// fetch, not poison the buffer pool for every later query. Column
	// checksums are only checked on decode, so decode the whole segment.
	seg, err := storage.UnmarshalSegment(blob)
	if err == nil {
		_, err = seg.Decode()
	}
	if err != nil {
		return nil, fmt.Errorf("storage: fetch %s: %w", id, err)
	}
	n := sim.Bytes(len(blob))
	e.Cluster.MustDevice(fabric.DevStorageMed).Charge(fabric.OpScan, n)
	if _, err := e.Cluster.Transfer(fabric.DevStorageMed, e.dram, n); err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.fetches++
	e.mu.Unlock()
	return blob, nil
}

// CreateTable registers a table.
func (e *VolcanoEngine) CreateTable(name string, schema *columnar.Schema) error {
	_, err := e.Storage.CreateTable(name, schema)
	return err
}

// Load ingests a batch and updates statistics.
func (e *VolcanoEngine) Load(name string, b *columnar.Batch) error {
	if err := e.Storage.Append(name, b); err != nil {
		return err
	}
	st := ComputeStats(b)
	e.mu.Lock()
	if prev, ok := e.stats[name]; ok {
		st = MergeStats(prev, st)
	}
	e.stats[name] = st
	e.mu.Unlock()
	return nil
}

// TableSchema resolves a table's schema (it satisfies sqlparse.Catalog).
func (e *VolcanoEngine) TableSchema(name string) (*columnar.Schema, error) {
	meta, err := e.Storage.Table(name)
	if err != nil {
		return nil, err
	}
	return meta.Schema, nil
}

// chargeIter charges a device for every batch flowing through it; this
// is how the baseline accounts per-operator CPU work.
type chargeIter struct {
	in  exec.Iterator
	dev *fabric.Device
	op  fabric.OpClass
}

func (it *chargeIter) Schema() *columnar.Schema { return it.in.Schema() }

func (it *chargeIter) Next() (*columnar.Batch, error) {
	b, err := it.in.Next()
	if err != nil || b == nil {
		return b, err
	}
	it.dev.Charge(it.op, sim.Bytes(b.ByteSize()))
	return b, nil
}

// Execute runs a query through the pull-based iterator tree.
func (e *VolcanoEngine) Execute(q *plan.Query) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	meta, err := e.Storage.Table(q.Table)
	if err != nil {
		return nil, err
	}

	before := e.snapshotMeters()
	recBefore := e.Storage.Store().Recovery()

	// Scan: pull each segment through the buffer pool, decode on the
	// CPU, then stream the decoded batch from DRAM into the cores at
	// the single-core-limited rate.
	segIdx := 0
	var maxDecoded sim.Bytes
	dramToCPU := e.Cluster.LinkBetween(e.dram, e.cpu.Name)
	var it exec.Iterator = exec.NewFuncScan(meta.Schema, func() (*columnar.Batch, error) {
		if segIdx >= len(meta.SegmentKeys) {
			return nil, nil
		}
		key := meta.SegmentKeys[segIdx]
		segIdx++
		page, err := e.Pool.Get(bufferpool.PageID(key))
		if err != nil {
			return nil, err
		}
		defer e.Pool.Unpin(bufferpool.PageID(key))
		seg, err := storage.UnmarshalSegment(page.Data)
		if err != nil {
			return nil, err
		}
		// Decode (checksum + decompress) happens on the compute CPU in
		// the legacy model.
		e.cpu.Charge(fabric.OpDecompress, sim.Bytes(len(page.Data)))
		batch, err := seg.Decode()
		if err != nil {
			return nil, err
		}
		if n := sim.Bytes(batch.ByteSize()); n > maxDecoded {
			maxDecoded = n
		}
		if dramToCPU != nil {
			dramToCPU.Transfer(sim.Bytes(batch.ByteSize()))
		}
		return batch, nil
	})

	// Operator tree, all on the CPU.
	if q.Filter != nil {
		it = &chargeIter{in: it, dev: e.cpu, op: fabric.OpFilter}
		it = &exec.FilterIter{In: it, Pred: q.Filter}
	}
	switch {
	case q.CountOnly:
		it = &chargeIter{in: it, dev: e.cpu, op: fabric.OpCount}
		it = &exec.AggIter{In: it, Spec: expr.GroupBy{Aggs: []expr.AggSpec{{Func: expr.Count}}}}
	case q.GroupBy != nil:
		it = &chargeIter{in: it, dev: e.cpu, op: fabric.OpAggregate}
		it = &exec.AggIter{In: it, Spec: *q.GroupBy}
	case q.Projection != nil:
		it = &chargeIter{in: it, dev: e.cpu, op: fabric.OpProject}
		it = &exec.ProjectIter{In: it, Columns: q.Projection}
	}
	if q.OrderBy >= 0 {
		it = &chargeIter{in: it, dev: e.cpu, op: fabric.OpSort}
		it = &exec.SortIter{In: it, ByCol: q.OrderBy}
	}
	if q.Limit > 0 {
		it = &exec.LimitIter{In: it, N: q.Limit}
	}

	batches, err := exec.Drain(it)
	if err != nil {
		return nil, err
	}
	res := &Result{Batches: batches}
	res.Stats = e.buildStats(before, res)
	res.Stats.PeakMemory += maxDecoded
	// The baseline still benefits from whatever retrying the object store
	// itself does; record it so E19 compares recovery cost fairly.
	rec := e.Storage.Store().Recovery().Sub(recBefore)
	res.Stats.Retries = rec.Retries
	res.Stats.ReplicaFallbacks = rec.ReplicaFallbacks
	res.Stats.RecoveryBytes = rec.RetryBytes
	return res, nil
}

func (e *VolcanoEngine) snapshotMeters() map[meterKey]sim.Snapshot {
	out := make(map[meterKey]sim.Snapshot)
	for _, d := range e.Cluster.Devices() {
		out[meterKey{false, d.Name}] = d.Meter.Snapshot()
	}
	for _, l := range e.Cluster.Links() {
		out[meterKey{true, l.Name}] = l.Meter.Snapshot()
	}
	return out
}

// buildStats mirrors the data-flow engine's accounting so results are
// directly comparable.
func (e *VolcanoEngine) buildStats(before map[meterKey]sim.Snapshot, res *Result) ExecStats {
	st := ExecStats{
		Engine:     "volcano",
		LinkBytes:  make(map[string]sim.Bytes),
		DeviceBusy: make(map[string]sim.VTime),
		ResultRows: res.Rows(),
	}
	var maxBusy sim.VTime
	for _, d := range e.Cluster.Devices() {
		delta := d.Meter.Snapshot().Sub(before[meterKey{false, d.Name}])
		if delta.Busy > 0 {
			st.DeviceBusy[d.Name] = delta.Busy
			if delta.Busy > maxBusy {
				maxBusy = delta.Busy
			}
		}
	}
	cpuDelta := e.cpu.Meter.Snapshot().Sub(before[meterKey{false, e.cpu.Name}])
	st.CPUBytes = cpuDelta.Bytes
	st.CPUBusy = cpuDelta.Busy
	var latency sim.VTime
	for _, l := range e.Cluster.Links() {
		delta := l.Meter.Snapshot().Sub(before[meterKey{true, l.Name}])
		if delta.Bytes > 0 {
			st.LinkBytes[l.Name] = delta.Bytes
			st.MovedBytes += delta.Bytes
			if delta.Busy > maxBusy {
				maxBusy = delta.Busy
			}
		}
	}
	// Pull execution pays the storage round trip per buffer-pool miss,
	// not once per stream: latency amplifies with misses.
	e.mu.Lock()
	fetches := e.fetches
	e.mu.Unlock()
	if path, err := e.Cluster.Path(fabric.DevStorageMed, e.dram); err == nil {
		var hop sim.VTime
		for _, l := range path {
			hop += l.Latency
		}
		latency += hop * sim.VTime(fetches)
	}
	st.SimTime = maxBusy + latency
	poolStats := e.Pool.Stats()
	var resultBytes sim.Bytes
	for _, b := range res.Batches {
		resultBytes += sim.Bytes(b.ByteSize())
	}
	st.PeakMemory = poolStats.Resident + resultBytes
	return st
}
