package flow

import (
	"fmt"
	"sync"

	"repro/internal/columnar"
	"repro/internal/fabric"
	"repro/internal/sim"
)

// Emit delivers one batch downstream. It is only valid for the duration
// of the Process or Flush call it was passed to.
type Emit func(*columnar.Batch) error

// Stage is one push-based operator. A stage is driven by the runtime:
// Process is called once per input batch and may emit any number of
// output batches; Flush is called once at end-of-stream to drain
// retained state.
type Stage interface {
	Name() string
	Process(b *columnar.Batch, emit Emit) error
	Flush(emit Emit) error
}

// Source produces the pipeline's input batches (e.g. a storage scan).
// It must stop and return promptly when emit returns an error.
type Source func(emit Emit) error

// Placed binds a stage to the device that hosts it. The runtime charges
// the device Op per input byte (when ChargeInput) and one kernel setup
// when the stream starts, modelling Section 7.2's register-programmed
// accelerators.
type Placed struct {
	Stage       Stage
	Device      *fabric.Device
	Op          fabric.OpClass
	ChargeInput bool
}

// Pipeline is a linear chain: Source -> stage[0] -> ... -> stage[n-1] ->
// sink. Ports between consecutive elements carry the traffic across the
// fabric paths given in Paths.
type Pipeline struct {
	Name   string
	Source Source
	Stages []Placed
	// Paths[i] lists the links crossed between element i-1 and element
	// i's device (Paths[0] = source->stage0). Its length must equal
	// len(Stages); missing entries mean on-device handoff.
	Paths [][]*fabric.Link
	// Depth is the per-port queue depth (credits); default 8.
	Depth int
	// CreditBatch is how many credits accumulate before one return
	// message; default Depth/2.
	CreditBatch int
}

// Result reports what a pipeline run did.
type Result struct {
	Ports       []PortStats
	BatchesIn   []int64 // per stage
	BatchesOut  []int64 // per stage
	SinkBatches int64
	SinkRows    int64
	SinkBytes   sim.Bytes
}

// TotalDataMessages sums data messages over all ports.
func (r Result) TotalDataMessages() int64 {
	var n int64
	for _, p := range r.Ports {
		n += p.DataMessages
	}
	return n
}

// TotalCreditMessages sums credit messages over all ports.
func (r Result) TotalCreditMessages() int64 {
	var n int64
	for _, p := range r.Ports {
		n += p.CreditMessages
	}
	return n
}

// Run executes the pipeline, delivering final batches to sink (called
// from a single goroutine). It returns when every stage has flushed or
// any element failed.
func (p *Pipeline) Run(sink Emit) (Result, error) {
	var res Result
	if p.Source == nil {
		return res, fmt.Errorf("flow: pipeline %q has no source", p.Name)
	}
	if len(p.Paths) != 0 && len(p.Paths) != len(p.Stages) {
		return res, fmt.Errorf("flow: pipeline %q has %d paths for %d stages", p.Name, len(p.Paths), len(p.Stages))
	}
	depth := p.Depth
	if depth <= 0 {
		depth = 8
	}
	creditBatch := p.CreditBatch
	if creditBatch <= 0 {
		creditBatch = depth / 2
	}

	done := make(chan struct{})
	var cancelOnce sync.Once
	var errOnce sync.Once
	var firstErr error
	fail := func(err error) {
		if err == nil || err == ErrCanceled {
			return
		}
		errOnce.Do(func() { firstErr = err })
		cancelOnce.Do(func() { close(done) })
	}

	ports := make([]*Port, len(p.Stages))
	for i := range p.Stages {
		var path []*fabric.Link
		if len(p.Paths) > 0 {
			path = p.Paths[i]
		}
		ports[i] = newPort(fmt.Sprintf("%s.port%d", p.Name, i), path, depth, creditBatch, done)
	}

	res.BatchesIn = make([]int64, len(p.Stages))
	res.BatchesOut = make([]int64, len(p.Stages))

	var wg sync.WaitGroup

	// Source goroutine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		emit := sink
		if len(ports) > 0 {
			emit = ports[0].Send
		}
		if err := p.Source(func(b *columnar.Batch) error {
			if len(ports) == 0 {
				res.SinkBatches++
				res.SinkRows += int64(b.NumRows())
				res.SinkBytes += sim.Bytes(b.ByteSize())
			}
			return emit(b)
		}); err != nil {
			fail(err)
		}
		if len(ports) > 0 {
			ports[0].Close()
		}
	}()

	// Stage goroutines.
	for i := range p.Stages {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st := p.Stages[i]
			in := ports[i]
			var out Emit
			last := i == len(p.Stages)-1
			if last {
				out = func(b *columnar.Batch) error {
					res.SinkBatches++
					res.SinkRows += int64(b.NumRows())
					res.SinkBytes += sim.Bytes(b.ByteSize())
					res.BatchesOut[i]++
					return sink(b)
				}
			} else {
				next := ports[i+1]
				out = func(b *columnar.Batch) error {
					res.BatchesOut[i]++
					return next.Send(b)
				}
			}
			if st.Device != nil {
				st.Device.ChargeSetup()
			}
			for {
				b, ok, err := in.Recv()
				if err != nil {
					fail(err)
					break
				}
				if !ok {
					if err := st.Stage.Flush(out); err != nil {
						fail(err)
					}
					break
				}
				res.BatchesIn[i]++
				if st.ChargeInput && st.Device != nil {
					st.Device.Charge(st.Op, sim.Bytes(b.ByteSize()))
				}
				if err := st.Stage.Process(b, out); err != nil {
					fail(err)
					in.CreditReturn()
					break
				}
				in.CreditReturn()
			}
			in.flushCredits()
			if !last {
				ports[i+1].Close()
			}
		}(i)
	}

	wg.Wait()
	for _, port := range ports {
		res.Ports = append(res.Ports, port.Stats())
	}
	return res, firstErr
}
