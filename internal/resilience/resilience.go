// Package resilience implements the gray-failure defense layer shared by
// storage, sched, flow and the engines: EWMA health tracking, hedged-read
// and speculative-execution policy knobs, per-device circuit breakers with
// half-open probing, and a global retry budget.
//
// Gray failures are devices that are slow but not dead — a degraded
// storage processor, a jittery link. Crash recovery (replica fallback,
// plan failover) never triggers for them because every operation
// eventually succeeds; meanwhile the tail latency of the whole dataflow
// collapses onto the slowest participant. The defenses here follow the
// tail-at-scale playbook: measure per-participant latency (Tracker),
// hedge or speculate past stragglers after a deviation-scaled delay
// (Policy), stop sending work to participants that consistently fail
// (BreakerSet), and cap the total extra work recovery may generate
// (Budget) so fault storms degrade to shed-or-serve-slow instead of
// retry amplification.
package resilience

import "time"

// Policy bundles the resilience machinery and its tuning knobs. A nil
// *Policy disables everything, which keeps the zero-configuration paths
// of storage and the engines byte-identical to the pre-resilience
// behavior.
type Policy struct {
	// Health tracks per-participant latency (EWMA + mean absolute
	// deviation). Keys are caller-chosen: replica names, device names,
	// stage/device pairs.
	Health *Tracker
	// Breakers holds the per-device circuit breakers consulted by the
	// scheduler's admission path and tripped by the engines' failure
	// handling.
	Breakers *BreakerSet
	// Budget is the global retry budget consumed by hedges, speculative
	// re-executions and fault retries. Nil means unlimited.
	Budget *Budget

	// Hedge enables hedged replica reads in the object store.
	Hedge bool
	// HedgeK scales the hedge trigger: a read hedges after
	// ewma + HedgeK*deviation of its replica's latency history.
	HedgeK float64
	// HedgeMinDelay floors the hedge trigger so cold health stats or a
	// very tight history cannot hedge instantly and double every read.
	HedgeMinDelay time.Duration

	// Speculate enables speculative morsel re-execution in parallel
	// scans.
	Speculate bool
	// SpecMultiple is the straggler threshold: a morsel running past
	// SpecMultiple x the EWMA of completed morsels is re-issued.
	SpecMultiple float64
	// SpecMinSamples is how many morsels must complete before the EWMA
	// is trusted for speculation decisions.
	SpecMinSamples int
}

// NewPolicy returns a Policy with hedging and speculation enabled and
// the defaults used by the experiments: hedge at ewma+3*dev (floored at
// 200us), speculate at 3x the morsel EWMA after 4 completions, breakers
// tripping after 4 consecutive failures with a 50ms cooldown, and a
// retry budget of 10% of observed ops (burst 32).
func NewPolicy() *Policy {
	return &Policy{
		Health:         NewTracker(0.2, 4),
		Breakers:       NewBreakerSet(BreakerConfig{TripThreshold: 4, Cooldown: 50 * time.Millisecond, HalfOpenProbes: 1}),
		Budget:         NewBudget(0.1, 32),
		Hedge:          true,
		HedgeK:         3,
		HedgeMinDelay:  200 * time.Microsecond,
		Speculate:      true,
		SpecMultiple:   3,
		SpecMinSamples: 4,
	}
}
