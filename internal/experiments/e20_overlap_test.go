package experiments

import (
	"bytes"
	"testing"
)

func TestE20StageOverlap(t *testing.T) {
	r, err := E20StageOverlap(50000)
	if err != nil {
		t.Fatal(err)
	}
	if r.DataFlowCF <= 1.5 {
		t.Errorf("dataflow concurrency = %.3f, want > 1.5 (staged overlap)", r.DataFlowCF)
	}
	if r.VolcanoCF > 1.1 {
		t.Errorf("volcano concurrency = %.3f, want <= 1.1 (serial pull)", r.VolcanoCF)
	}
	if r.DataFlowCF <= 1.3*r.VolcanoCF {
		t.Errorf("dataflow concurrency %.3f not clearly above volcano %.3f",
			r.DataFlowCF, r.VolcanoCF)
	}
	if got := r.Table.Metrics["dataflow_concurrency"]; got != r.DataFlowCF {
		t.Errorf("metric dataflow_concurrency = %v, want %v", got, r.DataFlowCF)
	}
	if len(r.Table.Rows) != 2 {
		t.Fatalf("table has %d rows, want 2", len(r.Table.Rows))
	}
}

// TestE20Deterministic renders both traces twice from independent runs;
// CI diffs trace files the same way.
func TestE20Deterministic(t *testing.T) {
	render := func() (string, string) {
		r, err := E20StageOverlap(20000)
		if err != nil {
			t.Fatal(err)
		}
		var df, vo bytes.Buffer
		if err := r.DataFlowTrace.WriteJSON(&df); err != nil {
			t.Fatal(err)
		}
		if err := r.VolcanoTrace.WriteJSON(&vo); err != nil {
			t.Fatal(err)
		}
		return df.String(), vo.String()
	}
	df1, vo1 := render()
	df2, vo2 := render()
	if df1 != df2 {
		t.Error("E20 dataflow trace not deterministic")
	}
	if vo1 != vo2 {
		t.Error("E20 volcano trace not deterministic")
	}
}
