package core

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/fabric"
	"repro/internal/flow"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/workload"
)

// tracedDataFlow builds a dataflow engine with tracing on and segments
// small enough that a query streams many batches through the pipeline —
// the precondition for stage overlap to show in the timeline.
func tracedDataFlow(t *testing.T) (*DataFlowEngine, workload.LineitemConfig) {
	t.Helper()
	cfg := workload.DefaultLineitemConfig(testRows)
	data := workload.GenLineitem(cfg)
	df := NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
	df.Tracing = true
	df.Storage.SegmentRows = 4096
	if err := df.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
		t.Fatal(err)
	}
	if err := df.Load("lineitem", data); err != nil {
		t.Fatal(err)
	}
	return df, cfg
}

func TestDataFlowTraceShowsStageOverlap(t *testing.T) {
	df, cfg := tracedDataFlow(t)
	q := plan.NewQuery("lineitem").
		WithFilter(workload.SelectivityFilter(cfg, 0.5)).
		WithGroupBy(workload.PricingSummary())
	res, err := df.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil {
		t.Fatal("Tracing=true returned nil Result.Trace")
	}
	if len(tr.Spans()) == 0 {
		t.Fatal("trace has no spans")
	}
	if len(tr.Tracks()) < 3 {
		t.Fatalf("trace covers %d tracks, want a multi-device timeline: %v",
			len(tr.Tracks()), tr.Tracks())
	}
	cf := tr.ConcurrencyFactor()
	if cf <= 1.0 {
		t.Errorf("dataflow concurrency factor = %.3f, want > 1.0 (staged overlap)", cf)
	}
	// An admission event should annotate the placement decision.
	var admits int
	for _, ev := range tr.Events() {
		if ev.Name == "admit" {
			admits++
		}
	}
	if admits != 1 {
		t.Errorf("trace has %d admit events, want 1", admits)
	}
	// Meter series must be present and attributable.
	if len(tr.SeriesList()) == 0 {
		t.Error("trace has no meter series")
	}
}

func TestVolcanoTraceIsSerial(t *testing.T) {
	_, vo, cfg := newEngines(t)
	vo.Tracing = true
	q := plan.NewQuery("lineitem").
		WithFilter(workload.SelectivityFilter(cfg, 0.5)).
		WithGroupBy(workload.PricingSummary())
	res, err := vo.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil {
		t.Fatal("Tracing=true returned nil Result.Trace")
	}
	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("trace has no spans")
	}
	// One clock, pull execution: spans never overlap at all, across ALL
	// tracks, so the concurrency factor cannot exceed 1.
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].End {
			t.Fatalf("volcano spans overlap: %v then %v", spans[i-1], spans[i])
		}
	}
	if cf := tr.ConcurrencyFactor(); cf > 1.0 {
		t.Errorf("volcano concurrency factor = %.3f, want <= 1.0 (serial pull)", cf)
	}
	// The timeline must show the legacy data path: media fetch, network
	// transfer, CPU decode, CPU operators.
	kinds := map[string]int{}
	for _, sp := range spans {
		kinds[sp.Name]++
	}
	for _, want := range []string{"fetch", "xfer", "decode", "filter", "aggregate"} {
		if kinds[want] == 0 {
			t.Errorf("volcano trace has no %q spans (have %v)", want, kinds)
		}
	}
}

// TestTraceDeterministic runs the identical seeded query on two fresh
// engine pairs and requires byte-identical trace JSON — the property CI
// relies on to diff traces across runs.
func TestTraceDeterministic(t *testing.T) {
	render := func() (string, string) {
		df, cfg := tracedDataFlow(t)
		q := plan.NewQuery("lineitem").
			WithFilter(workload.SelectivityFilter(cfg, 0.5)).
			WithGroupBy(workload.PricingSummary())
		res, err := df.Execute(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Trace.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}

		_, vo, _ := newEngines(t)
		vo.Tracing = true
		vres, err := vo.Execute(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		var vbuf bytes.Buffer
		if err := vres.Trace.WriteJSON(&vbuf); err != nil {
			t.Fatal(err)
		}
		return buf.String(), vbuf.String()
	}
	df1, vo1 := render()
	df2, vo2 := render()
	if df1 != df2 {
		t.Error("dataflow trace JSON differs between identical runs")
	}
	if vo1 != vo2 {
		t.Error("volcano trace JSON differs between identical runs")
	}
}

func TestTracingOffReturnsNilTrace(t *testing.T) {
	df, vo, cfg := newEngines(t)
	q := plan.NewQuery("lineitem").
		WithFilter(workload.SelectivityFilter(cfg, 0.05)).
		WithProjection(workload.LOrderKey)
	dres, err := df.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Trace != nil {
		t.Error("dataflow Result.Trace non-nil with Tracing=false")
	}
	vres, err := vo.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if vres.Trace != nil {
		t.Error("volcano Result.Trace non-nil with Tracing=false")
	}
}

func TestExecStatsControlOverhead(t *testing.T) {
	var s ExecStats
	if got := s.ControlOverhead(); got != 0 {
		t.Errorf("no ports: ControlOverhead = %v, want 0", got)
	}
	s.Ports = []flow.PortStats{
		{Name: "a", DataMessages: 6, CreditMessages: 2},
		{Name: "b", DataMessages: 2, CreditMessages: 2},
	}
	if got := s.ControlOverhead(); got != 0.5 {
		t.Errorf("ControlOverhead = %v, want 0.5 (4 credit / 8 data)", got)
	}
	s.Ports = []flow.PortStats{{Name: "idle", CreditMessages: 3}}
	if got := s.ControlOverhead(); got != 0 {
		t.Errorf("zero data messages: ControlOverhead = %v, want 0", got)
	}
}

func TestExecStatsStringRecoveryLine(t *testing.T) {
	clean := ExecStats{Engine: "dataflow", Variant: "full-offload", ResultRows: 7}
	if out := clean.String(); strings.Contains(out, "recovery:") {
		t.Errorf("clean stats printed a recovery line:\n%s", out)
	}
	hurt := ExecStats{
		Engine: "dataflow", Variant: "cpu-only", ResultRows: 7,
		Retries: 2, ReplicaFallbacks: 1, Failovers: 1, DegradedPlacement: true,
		RecoveryBytes: 4096, RecoveryTime: sim.VTime(12345),
	}
	out := hurt.String()
	for _, want := range []string{"recovery:", "retries=2", "fallbacks=1", "failovers=1", "degraded=true"} {
		if !strings.Contains(out, want) {
			t.Errorf("recovery line missing %q:\n%s", want, out)
		}
	}
}
