package exec

import (
	"strings"
	"testing"

	"repro/internal/columnar"
	"repro/internal/encoding"
	"repro/internal/expr"
	"repro/internal/flow"
)

func mixedBatch() *columnar.Batch {
	schema := columnar.NewSchema(
		columnar.Field{Name: "k", Type: columnar.Int64},
		columnar.Field{Name: "x", Type: columnar.Float64},
		columnar.Field{Name: "s", Type: columnar.String},
		columnar.Field{Name: "b", Type: columnar.Bool},
	)
	b := columnar.NewBatch(schema, 4)
	b.AppendRow(columnar.IntValue(1), columnar.FloatValue(1.5), columnar.StringValue("ab"), columnar.BoolValue(true))
	b.AppendRow(columnar.NullValue(columnar.Int64), columnar.FloatValue(-2), columnar.StringValue(""), columnar.BoolValue(false))
	b.AppendRow(columnar.IntValue(3), columnar.NullValue(columnar.Float64), columnar.NullValue(columnar.String), columnar.NullValue(columnar.Bool))
	return b
}

func TestSerializeBatchRoundTrip(t *testing.T) {
	in := mixedBatch()
	out, err := deserializeBatch(serializeBatch(in))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Schema().Equal(in.Schema()) {
		t.Fatalf("schema changed: %s vs %s", out.Schema(), in.Schema())
	}
	for r := 0; r < in.NumRows(); r++ {
		for c := 0; c < in.NumCols(); c++ {
			if !out.Col(c).Value(r).Equal(in.Col(c).Value(r)) {
				t.Fatalf("cell (%d,%d) differs", r, c)
			}
		}
	}
}

func TestDeserializeBatchRejectsGarbage(t *testing.T) {
	blob := serializeBatch(mixedBatch())
	for _, cut := range []int{0, 2, 5, len(blob) / 2} {
		if _, err := deserializeBatch(blob[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestEncryptDecryptStages(t *testing.T) {
	key := encoding.NewStreamKey([]byte("unit"))
	enc := &EncryptStage{Key: key}
	dec := &DecryptStage{Key: key}
	in := mixedBatch()

	sealedBatches := runStage(t, enc, in, in) // two batches, distinct seqs
	if len(sealedBatches) != 2 {
		t.Fatalf("sealed %d batches", len(sealedBatches))
	}
	if sealedBatches[0].Schema().Fields[0].Name != "sealed" {
		t.Fatal("sealed container schema wrong")
	}
	opened := runStage(t, dec, sealedBatches...)
	if len(opened) != 2 || opened[0].NumRows() != in.NumRows() {
		t.Fatalf("opened %d batches", len(opened))
	}
	for c := 0; c < in.NumCols(); c++ {
		if !opened[1].Col(c).Value(0).Equal(in.Col(c).Value(0)) {
			t.Fatal("decrypted data differs")
		}
	}
	if enc.Name() == "" || dec.Name() == "" {
		t.Error("empty stage names")
	}
}

func TestDecryptStageRejectsTampering(t *testing.T) {
	key := encoding.NewStreamKey([]byte("unit"))
	enc := &EncryptStage{Key: key}
	sealed := runStage(t, enc, mixedBatch())[0]
	raw := []byte(sealed.Col(0).Strings()[0])
	raw[len(raw)/2] ^= 1
	tampered := columnar.BatchOf(sealed.Schema(), columnar.FromStrings([]string{string(raw)}))

	dec := &DecryptStage{Key: key}
	err := dec.Process(tampered, func(*columnar.Batch) error { return nil })
	if err == nil {
		t.Fatal("tampered payload accepted")
	}
	// Wrong key fails too.
	other := &DecryptStage{Key: encoding.NewStreamKey([]byte("other"))}
	if err := other.Process(sealed, func(*columnar.Batch) error { return nil }); err == nil {
		t.Fatal("wrong key accepted")
	}
	// Unsealed input is rejected.
	if err := dec.Process(mixedBatch(), func(*columnar.Batch) error { return nil }); err == nil ||
		!strings.Contains(err.Error(), "unsealed") {
		t.Fatalf("unsealed batch error = %v", err)
	}
}

func TestHashValueAllTypes(t *testing.T) {
	iv := columnar.FromInt64s([]int64{5, 5, 6})
	fv := columnar.FromFloat64s([]float64{1.5, 1.5, 2.5})
	sv := columnar.FromStrings([]string{"x", "x", "y"})
	bv := columnar.FromBools([]bool{true, true, false})
	for name, col := range map[string]*columnar.Vector{"int": iv, "float": fv, "string": sv, "bool": bv} {
		h0 := HashValue(col, 0, SeedJoin)
		h1 := HashValue(col, 1, SeedJoin)
		h2 := HashValue(col, 2, SeedJoin)
		if h0 != h1 {
			t.Errorf("%s: equal values hashed differently", name)
		}
		if h0 == h2 {
			t.Errorf("%s: distinct values collided", name)
		}
	}
	// NULLs hash consistently and differently from zero values.
	nv := columnar.NewVector(columnar.Int64, 2)
	nv.AppendNull()
	nv.AppendInt64(0)
	if HashValue(nv, 0, SeedJoin) == HashValue(nv, 1, SeedJoin) {
		t.Error("NULL hashed like zero")
	}
	// Seeds decorrelate.
	if HashValue(iv, 0, SeedJoin) == HashValue(iv, 0, SeedPartition) {
		t.Error("seeds did not decorrelate")
	}
}

func TestHashTableMemBytes(t *testing.T) {
	table := NewHashTable(kvSchema(), 0)
	if table.MemBytes() != 0 {
		t.Errorf("empty MemBytes = %v", table.MemBytes())
	}
	table.Build(kvBatch([]int64{1, 2, 3}, []int64{0, 0, 0}))
	if table.MemBytes() < 3*16 {
		t.Errorf("MemBytes = %v after 3 rows", table.MemBytes())
	}
}

func TestHashTableUnsupportedKeyPanics(t *testing.T) {
	schema := columnar.NewSchema(columnar.Field{Name: "f", Type: columnar.Float64})
	defer func() {
		if recover() == nil {
			t.Fatal("float join key accepted")
		}
	}()
	NewHashTable(schema, 0)
}

func TestStageNames(t *testing.T) {
	stages := []flow.Stage{
		&FilterStage{Pred: expr.NewCmp(0, expr.Eq, columnar.IntValue(1))},
		&ProjectStage{Columns: []int{0}},
		&HashStage{KeyCol: 0},
		&CountStage{},
		&TopKStage{K: 3, ByCol: 0},
		&SortStage{ByCol: 0},
		&LimitStage{N: 1},
		&CompressStage{},
		&BuildStage{Table: NewHashTable(kvSchema(), 0)},
		&HashJoinStage{Table: NewHashTable(kvSchema(), 0), ProbeKey: 0},
	}
	for _, s := range stages {
		if s.Name() == "" {
			t.Errorf("%T has empty Name", s)
		}
	}
}

func TestVolcanoSchemas(t *testing.T) {
	scan := NewSliceScan(kvSchema(), nil)
	if !(&FilterIter{In: scan}).Schema().Equal(kvSchema()) {
		t.Error("FilterIter schema")
	}
	p := &ProjectIter{In: scan, Columns: []int{1}}
	if p.Schema().Fields[0].Name != "v" {
		t.Error("ProjectIter schema")
	}
	j := &HashJoinIter{Build: scan, Probe: NewSliceScan(kvSchema(), nil), BuildKey: 0, ProbeKey: 0}
	if j.Schema().NumFields() != 4 {
		t.Error("HashJoinIter schema")
	}
	agg := &AggIter{In: scan, Spec: expr.GroupBy{Aggs: []expr.AggSpec{{Func: expr.Count}}}}
	if agg.Schema().Fields[0].Name != "count" {
		t.Error("AggIter schema")
	}
	if !(&SortIter{In: scan}).Schema().Equal(kvSchema()) {
		t.Error("SortIter schema")
	}
	if !(&LimitIter{In: scan}).Schema().Equal(kvSchema()) {
		t.Error("LimitIter schema")
	}
	if !(&FuncScan{schema: kvSchema()}).Schema().Equal(kvSchema()) {
		t.Error("FuncScan schema")
	}
}

func TestCompressStagePassthrough(t *testing.T) {
	out := runStage(t, &CompressStage{}, mixedBatch())
	if len(out) != 1 || out[0].NumRows() != 3 {
		t.Error("CompressStage altered the stream")
	}
}

func TestTopKFlushEmptyAndSortEmpty(t *testing.T) {
	if out := runStage(t, &TopKStage{K: 3, ByCol: 0}); len(out) != 0 {
		t.Error("empty top-k emitted")
	}
	if out := runStage(t, &SortStage{ByCol: 0}); len(out) != 0 {
		t.Error("empty sort emitted")
	}
}
