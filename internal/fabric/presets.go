package fabric

import (
	"fmt"

	"repro/internal/sim"
)

// Well-known device names used by the preset topologies. Higher layers
// (planner, engine) reference devices by these names.
const (
	DevDisk        = "disk"
	DevDRAM        = "dram"
	DevLLC         = "llc"
	DevCPU         = "cpu"
	DevStorageMed  = "storage.media"
	DevStorageProc = "storage.proc"
	DevStorageNIC  = "storage.nic"
	DevSwitch      = "switch"
	DevMemNode     = "mem.dram"
	DevMemNIC      = "mem.nic"
)

// ComputeDev names the per-compute-node device dev on node i
// (e.g. ComputeDev(0, "cpu") == "compute0.cpu").
func ComputeDev(i int, dev string) string {
	return fmt.Sprintf("compute%d.%s", i, dev)
}

// NewConventionalServer builds the Figure 1 machine: the von Neumann
// data path disk <-> memory <-> caches <-> CPU, with nothing smart
// anywhere. Used by experiment E1 as the legacy baseline.
func NewConventionalServer() *Topology {
	t := NewTopology("conventional-server")
	t.AddDevice(NewStorageMedia(DevDisk))
	t.AddDevice(NewMemory(DevDRAM))
	t.AddDevice(NewMemory(DevLLC))
	t.AddDevice(NewCPU(DevCPU, 8))
	t.Connect(DevDisk, DevDRAM, LinkPCIe4, PCIeBandwidth[LinkPCIe4], NVMeLatency)
	t.Connect(DevDRAM, DevLLC, LinkDDR, DDRBandwidth, DDRLatency)
	t.Connect(DevLLC, DevCPU, LinkOnChip, OnChipBandwidth, OnChipLatency)
	return t
}

// ClusterConfig parameterizes the disaggregated topology of Figure 6.
type ClusterConfig struct {
	// ComputeNodes is the number of compute nodes attached to the
	// switch; Figure 4's scattering pipeline needs more than one.
	ComputeNodes int
	// CPUCores is the core count of each compute node's CPU.
	CPUCores int
	// NICTier selects the Ethernet generation of every NIC.
	NICTier LinkKind
	// HostBus selects the NIC<->memory bus on compute nodes
	// (a PCIe generation or LinkCXL).
	HostBus LinkKind
	// SmartStorage enables the in-storage processor's offload
	// capabilities. When false the device exists but can only scan,
	// modelling a dumb storage server that must ship everything.
	SmartStorage bool
	// SmartNICs enables bump-in-the-wire processing on all NICs.
	SmartNICs bool
	// NearMemory interposes a near-memory accelerator between each
	// compute node's DRAM and its CPU.
	NearMemory bool
	// MemoryNode attaches a disaggregated memory node to the switch.
	MemoryNode bool
}

// DefaultClusterConfig is the full Figure 6 fabric: one storage node, one
// memory node, two compute nodes, everything smart, 400G network, CXL
// host bus.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{
		ComputeNodes: 2,
		CPUCores:     8,
		NICTier:      LinkEth400,
		HostBus:      LinkCXL,
		SmartStorage: true,
		SmartNICs:    true,
		NearMemory:   true,
		MemoryNode:   true,
	}
}

// LegacyClusterConfig is the same physical fabric with every smart
// capability turned off: the CPU-centric baseline the paper argues
// against.
func LegacyClusterConfig() ClusterConfig {
	cfg := DefaultClusterConfig()
	cfg.SmartStorage = false
	cfg.SmartNICs = false
	cfg.NearMemory = false
	cfg.HostBus = LinkPCIe4
	return cfg
}

// Cluster is a disaggregated topology with accessors for its well-known
// devices.
type Cluster struct {
	*Topology
	Cfg ClusterConfig
}

// NewCluster builds the Figure 6 topology for the given configuration.
func NewCluster(cfg ClusterConfig) *Cluster {
	if cfg.ComputeNodes < 1 {
		cfg.ComputeNodes = 1
	}
	if cfg.CPUCores < 1 {
		cfg.CPUCores = 1
	}
	ethBW, ok := EthBandwidth[cfg.NICTier]
	if !ok {
		panic(fmt.Sprintf("fabric: NICTier %v is not an Ethernet tier", cfg.NICTier))
	}
	busBW, ok := PCIeBandwidth[cfg.HostBus]
	if !ok {
		panic(fmt.Sprintf("fabric: HostBus %v is not a PCIe/CXL kind", cfg.HostBus))
	}
	busLat := PCIeLatency
	if cfg.HostBus == LinkCXL {
		busLat = CXLLatency
	}

	t := NewTopology(fmt.Sprintf("cluster-%dc", cfg.ComputeNodes))

	// Storage node.
	t.AddDevice(NewStorageMedia(DevStorageMed))
	proc := NewSmartSSD(DevStorageProc)
	if !cfg.SmartStorage {
		// A dumb storage server can only read, decode (for error
		// checking, as Section 2.1 notes every storage system must)
		// and ship.
		proc.Caps = Capability{OpScan: NVMeBandwidth, OpDecompress: 5e9}
		proc.KernelSetup = 0
	}
	t.AddDevice(proc)
	t.AddDevice(newNIC(DevStorageNIC, ethBW, cfg.SmartNICs))
	t.Connect(DevStorageMed, DevStorageProc, LinkNVMe, NVMeBandwidth, NVMeLatency).Parallelism = NVMeQueueDepth
	t.Connect(DevStorageProc, DevStorageNIC, LinkPCIe5, PCIeBandwidth[LinkPCIe5], PCIeLatency)

	// Switch.
	t.AddDevice(NewSwitch(DevSwitch, ethBW))
	t.Connect(DevStorageNIC, DevSwitch, cfg.NICTier, ethBW, RDMALatency)

	// Compute nodes.
	for i := 0; i < cfg.ComputeNodes; i++ {
		nic := ComputeDev(i, "nic")
		dram := ComputeDev(i, "dram")
		cpu := ComputeDev(i, "cpu")
		t.AddDevice(newNIC(nic, ethBW, cfg.SmartNICs))
		t.AddDevice(NewMemory(dram))
		t.AddDevice(NewCPU(cpu, cfg.CPUCores))
		t.Connect(DevSwitch, nic, cfg.NICTier, ethBW, RDMALatency)
		t.Connect(nic, dram, cfg.HostBus, busBW, busLat)
		if cfg.NearMemory {
			nma := ComputeDev(i, "nma")
			t.AddDevice(NewNearMemoryAccel(nma))
			t.Connect(dram, nma, LinkDDR, DDRBandwidth, DDRLatency)
			t.Connect(nma, cpu, LinkOnChip, OnChipBandwidth, OnChipLatency)
		} else {
			// Without an accelerator the CPU pulls at its single-core-
			// limited share of controller bandwidth (Section 5.1).
			t.Connect(dram, cpu, LinkDDR, CoreMemBandwidth, DDRLatency)
		}
	}

	// Disaggregated memory node.
	if cfg.MemoryNode {
		t.AddDevice(NewMemory(DevMemNode))
		t.AddDevice(newNIC(DevMemNIC, ethBW, cfg.SmartNICs))
		t.Connect(DevMemNode, DevMemNIC, LinkDDR, DDRBandwidth, DDRLatency)
		t.Connect(DevMemNIC, DevSwitch, cfg.NICTier, ethBW, RDMALatency)
	}

	return &Cluster{Topology: t, Cfg: cfg}
}

func newNIC(name string, line sim.Rate, smart bool) *Device {
	nic := NewSmartNIC(name, line)
	if !smart {
		// A dumb NIC only moves bytes; it cannot host stages.
		nic.Caps = Capability{}
		nic.KernelSetup = 0
	}
	return nic
}

// StorageProc returns the storage node's processor.
func (c *Cluster) StorageProc() *Device { return c.MustDevice(DevStorageProc) }

// StorageNIC returns the storage node's NIC.
func (c *Cluster) StorageNIC() *Device { return c.MustDevice(DevStorageNIC) }

// Switch returns the network switch.
func (c *Cluster) Switch() *Device { return c.MustDevice(DevSwitch) }

// ComputeNIC returns compute node i's NIC.
func (c *Cluster) ComputeNIC(i int) *Device { return c.MustDevice(ComputeDev(i, "nic")) }

// ComputeCPU returns compute node i's CPU.
func (c *Cluster) ComputeCPU(i int) *Device { return c.MustDevice(ComputeDev(i, "cpu")) }

// ComputeDRAM returns compute node i's DRAM.
func (c *Cluster) ComputeDRAM(i int) *Device { return c.MustDevice(ComputeDev(i, "dram")) }

// NearMem returns compute node i's near-memory accelerator, or nil when
// the configuration has none.
func (c *Cluster) NearMem(i int) *Device { return c.Device(ComputeDev(i, "nma")) }
