package bufferpool

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/sim"
)

// fakeBacking serves deterministic page contents and counts fetches.
type fakeBacking struct {
	mu      sync.Mutex
	fetches map[PageID]int
	size    int
	failOn  PageID
}

func newBacking(pageSize int) *fakeBacking {
	return &fakeBacking{fetches: make(map[PageID]int), size: pageSize}
}

func (f *fakeBacking) fetch(_ context.Context, id PageID) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if id == f.failOn {
		return nil, errors.New("backing store broke")
	}
	f.fetches[id]++
	data := make([]byte, f.size)
	for i := range data {
		data[i] = byte(len(id))
	}
	return data, nil
}

func (f *fakeBacking) fetchCount(id PageID) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fetches[id]
}

func TestGetHitMiss(t *testing.T) {
	b := newBacking(100)
	p := New(1000, b.fetch)
	pg, err := p.Get(ctxbg, "a")
	if err != nil {
		t.Fatal(err)
	}
	if pg.Size() != 100 {
		t.Errorf("page size = %v", pg.Size())
	}
	p.Unpin("a")
	if _, err := p.Get(ctxbg, "a"); err != nil {
		t.Fatal(err)
	}
	p.Unpin("a")
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if b.fetchCount("a") != 1 {
		t.Errorf("fetches = %d, want 1", b.fetchCount("a"))
	}
	if st.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", st.HitRate())
	}
}

func TestEvictionWhenFull(t *testing.T) {
	b := newBacking(100)
	p := New(250, b.fetch) // room for 2 pages
	for _, id := range []PageID{"a", "b"} {
		if _, err := p.Get(ctxbg, id); err != nil {
			t.Fatal(err)
		}
		p.Unpin(id)
	}
	if _, err := p.Get(ctxbg, "c"); err != nil {
		t.Fatal(err)
	}
	p.Unpin("c")
	st := p.Stats()
	if st.Evictions == 0 {
		t.Error("no evictions despite overflow")
	}
	if st.Resident > 250 {
		t.Errorf("resident %v exceeds capacity", st.Resident)
	}
}

func TestPinnedPagesSurvive(t *testing.T) {
	b := newBacking(100)
	p := New(250, b.fetch)
	if _, err := p.Get(ctxbg, "pinned"); err != nil {
		t.Fatal(err)
	}
	// Do not unpin. Fill the rest; "pinned" must never be evicted.
	for i := 0; i < 10; i++ {
		id := PageID(fmt.Sprintf("x%d", i))
		if _, err := p.Get(ctxbg, id); err != nil {
			t.Fatal(err)
		}
		p.Unpin(id)
	}
	if !p.Contains("pinned") {
		t.Error("pinned page was evicted")
	}
}

func TestAllPinnedError(t *testing.T) {
	b := newBacking(100)
	p := New(200, b.fetch)
	p.Get(ctxbg, "a")
	p.Get(ctxbg, "b") // both pinned, pool full
	if _, err := p.Get(ctxbg, "c"); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("err = %v, want ErrPoolFull", err)
	}
}

func TestOversizePageRejected(t *testing.T) {
	b := newBacking(500)
	p := New(100, b.fetch)
	if _, err := p.Get(ctxbg, "big"); err == nil {
		t.Error("oversize page admitted")
	}
}

func TestFetchErrorPropagates(t *testing.T) {
	b := newBacking(10)
	b.failOn = "bad"
	p := New(100, b.fetch)
	if _, err := p.Get(ctxbg, "bad"); err == nil {
		t.Error("fetch failure swallowed")
	}
}

func TestUnpinPanics(t *testing.T) {
	p := New(100, newBacking(10).fetch)
	for _, tc := range []struct {
		name string
		prep func()
		id   PageID
	}{
		{"non-resident", func() {}, "ghost"},
		{"already unpinned", func() { p.Get(ctxbg, "a"); p.Unpin("a") }, "a"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tc.prep()
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			p.Unpin(tc.id)
		})
	}
}

func TestClockSecondChance(t *testing.T) {
	// Fill with a, b, c (capacity 3 pages). Admitting d clears all
	// reference bits and evicts a. Re-touching b sets its bit again, so
	// admitting e must skip b (second chance) and evict c.
	b := newBacking(100)
	p := New(350, b.fetch)
	get := func(id PageID) {
		t.Helper()
		if _, err := p.Get(ctxbg, id); err != nil {
			t.Fatal(err)
		}
		p.Unpin(id)
	}
	get("a")
	get("b")
	get("c")
	get("d")
	if p.Contains("a") {
		t.Fatal("expected a to be evicted first")
	}
	get("b") // second chance for b
	get("e")
	if !p.Contains("b") {
		t.Error("re-referenced page evicted despite second chance")
	}
	if p.Contains("c") {
		t.Error("cold page survived over re-referenced one")
	}
}

func TestWorkingSetThrash(t *testing.T) {
	// Working set 10 pages, pool 5: every access in a cyclic scan
	// misses (the classic thrash the paper's stateless engine avoids).
	b := newBacking(100)
	p := New(500, b.fetch)
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			id := PageID(fmt.Sprintf("p%d", i))
			if _, err := p.Get(ctxbg, id); err != nil {
				t.Fatal(err)
			}
			p.Unpin(id)
		}
	}
	st := p.Stats()
	if st.HitRate() > 0.1 {
		t.Errorf("cyclic scan over 2x working set got hit rate %.2f, expected thrash", st.HitRate())
	}
	// Same scan with a big pool: second and third rounds all hit.
	p2 := New(2000, newBacking(100).fetch)
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			id := PageID(fmt.Sprintf("p%d", i))
			if _, err := p2.Get(ctxbg, id); err != nil {
				t.Fatal(err)
			}
			p2.Unpin(id)
		}
	}
	if hr := p2.Stats().HitRate(); hr < 0.6 {
		t.Errorf("fitting working set got hit rate %.2f, want >= 0.66", hr)
	}
}

func TestConcurrentAccess(t *testing.T) {
	b := newBacking(10)
	p := New(10000, b.fetch)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := PageID(fmt.Sprintf("p%d", i%20))
				pg, err := p.Get(ctxbg, id)
				if err != nil {
					t.Error(err)
					return
				}
				_ = pg.Data[0]
				p.Unpin(id)
			}
		}(w)
	}
	wg.Wait()
	st := p.Stats()
	if st.Hits+st.Misses != 8*200 {
		t.Errorf("accesses = %d, want 1600", st.Hits+st.Misses)
	}
	if st.Resident > 20*10 {
		t.Errorf("resident %v exceeds 20 distinct pages", st.Resident)
	}
}

func TestNewValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"zero capacity", func() { New(0, newBacking(1).fetch) }},
		{"nil fetch", func() { New(sim.KB, nil) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			tc.f()
		})
	}
}

// ctxbg keeps the many Get call sites short.
var ctxbg = context.Background()
