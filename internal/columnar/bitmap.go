package columnar

import "math/bits"

// Bitmap is a fixed-capacity bit set used for null tracking and selection
// vectors. The zero value is an empty bitmap of length zero; use NewBitmap
// to size one.
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns a bitmap of n bits, all clear.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len reports the number of bits.
func (b *Bitmap) Len() int { return b.n }

// Set sets bit i.
func (b *Bitmap) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b *Bitmap) Clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports whether bit i is set.
func (b *Bitmap) Get(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count reports the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// And intersects b with other in place. Both must have the same length.
func (b *Bitmap) And(other *Bitmap) {
	if b.n != other.n {
		panic("columnar: Bitmap.And length mismatch")
	}
	for i := range b.words {
		b.words[i] &= other.words[i]
	}
}

// Or unions b with other in place. Both must have the same length.
func (b *Bitmap) Or(other *Bitmap) {
	if b.n != other.n {
		panic("columnar: Bitmap.Or length mismatch")
	}
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
}

// AndNot clears every bit of b that is set in other (b &^= other).
// Both must have the same length.
func (b *Bitmap) AndNot(other *Bitmap) {
	if b.n != other.n {
		panic("columnar: Bitmap.AndNot length mismatch")
	}
	for i := range b.words {
		b.words[i] &^= other.words[i]
	}
}

// Fill sets every bit in [lo, hi). Bits outside the range are untouched.
func (b *Bitmap) Fill(lo, hi int) {
	if lo < 0 || hi > b.n || lo > hi {
		panic("columnar: Bitmap.Fill range out of bounds")
	}
	if lo == hi {
		return
	}
	first, last := lo>>6, (hi-1)>>6
	loMask := ^uint64(0) << (uint(lo) & 63)
	hiMask := ^uint64(0) >> (63 - (uint(hi-1) & 63))
	if first == last {
		b.words[first] |= loMask & hiMask
		return
	}
	b.words[first] |= loMask
	for i := first + 1; i < last; i++ {
		b.words[i] = ^uint64(0)
	}
	b.words[last] |= hiMask
}

// Runs calls fn(lo, hi) for every maximal run [lo, hi) of consecutive set
// bits, in ascending order. Gather-decode uses runs to copy contiguous
// spans instead of visiting indices one by one.
func (b *Bitmap) Runs(fn func(lo, hi int)) {
	n := b.n
	for i := 0; i < n; {
		// Find the next set bit at or after i.
		wi := i >> 6
		w := b.words[wi] >> (uint(i) & 63)
		for w == 0 {
			wi++
			if wi == len(b.words) {
				return
			}
			i = wi << 6
			w = b.words[wi]
		}
		i += bits.TrailingZeros64(w)
		if i >= n {
			return
		}
		start := i
		// Find the next clear bit at or after i.
		wi = i >> 6
		w = ^b.words[wi] >> (uint(i) & 63)
		for w == 0 {
			wi++
			if wi == len(b.words) {
				i = n
				break
			}
			i = wi << 6
			w = ^b.words[wi]
		}
		if w != 0 && i < n {
			i += bits.TrailingZeros64(w)
			if i > n {
				i = n
			}
		}
		fn(start, i)
	}
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	out := &Bitmap{words: make([]uint64, len(b.words)), n: b.n}
	copy(out.words, b.words)
	return out
}

// Indices returns the positions of all set bits in ascending order,
// appended to dst. Used to materialize selection vectors.
func (b *Bitmap) Indices(dst []int) []int {
	for wi, w := range b.words {
		base := wi << 6
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			idx := base + tz
			if idx >= b.n {
				break
			}
			dst = append(dst, idx)
			w &= w - 1
		}
	}
	return dst
}

// ByteSize reports the in-memory footprint of the bitmap in bytes.
func (b *Bitmap) ByteSize() int { return len(b.words) * 8 }
