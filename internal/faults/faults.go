// Package faults implements deterministic fault injection for the
// simulated fabric. The paper's runtime (Section 7) spreads a query over
// many active devices — smart SSDs, NICs, near-memory units — which
// multiplies the failure surface: a device can drop an installed kernel,
// a link can flap, a storage read can fail transiently or return a
// corrupted blob. The Injector arms such fault points with per-point
// probability and budget; every point draws from its own seeded
// sim.RNG stream, so the same seed and the same per-point sequence of
// matching checks always yields the byte-identical fault schedule —
// even when checks of different points interleave nondeterministically
// across goroutines (a pipeline stage probing its device while the scan
// probes storage reads). Experiments (E19) sweep the fault rate; the
// recovery machinery in storage, flow, sched and core turns the
// injected faults into retries, replica fallbacks and plan failovers
// instead of query errors.
package faults

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/sim"
)

// Kind classifies an injectable fault.
type Kind uint8

// Fault kinds, ordered roughly by where on the data path they strike.
const (
	// TransientRead is a storage read that fails once and succeeds on
	// retry (media hiccup, momentary congestion).
	TransientRead Kind = iota
	// CorruptBlob flips a byte in the data returned by one storage read;
	// checksums catch it downstream and a re-read recovers.
	CorruptBlob
	// ObjectMissing makes one storage read report the object absent (a
	// flaky metadata lookup); other replicas or a retry recover.
	ObjectMissing
	// DeviceOffline drops the kernel installed on a device mid-query;
	// the engine must fail over to a placement that avoids the device.
	DeviceOffline
	// LinkFlap fails one data transfer on a fabric link; re-executing
	// the query recovers.
	LinkFlap
	// SlowStage delays a pipeline stage, exercising the flow watchdog.
	SlowStage
	// DegradedDevice is a gray failure: the target keeps serving but
	// every matching operation runs Severity times slower. Nothing ever
	// errors, so only tail-latency defenses (hedging, speculation)
	// mitigate it.
	DegradedDevice
	// JitterLink adds Severity x the base latency to matching transfers
	// on a fabric link — a congested or flapping-PHY link that still
	// delivers every payload.
	JitterLink
	// StickyCorrupt persistently damages the stored replica blob the
	// first time a matching read touches it: unlike CorruptBlob, every
	// subsequent read of that replica returns the same damaged bytes
	// until a repair overwrites them. Retrying the same replica cannot
	// help, so the kind is classified permanent; only another replica
	// (route-around) or the repair controller (heal) recovers.
	StickyCorrupt
)

// String names the kind.
func (k Kind) String() string {
	names := [...]string{
		"transient-read", "corrupt-blob", "object-missing",
		"device-offline", "link-flap", "slow-stage",
		"degraded-device", "jitter-link", "sticky-corrupt",
	}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Point arms one fault class. A point fires on a matching check with
// probability Prob until its Budget is exhausted.
type Point struct {
	Kind Kind
	// Target restricts the point to checks whose target has this prefix
	// (a device name, link name or object-key prefix); "" matches any.
	Target string
	// Prob is the per-check fire probability in [0, 1].
	Prob float64
	// Budget caps the total fires; 0 means unlimited.
	Budget int
	// After makes the point pass its first After matching checks without
	// firing (or consuming randomness): a deterministic way to strike
	// mid-stream — e.g. after a checkpoint epoch has completed — instead
	// of on the first batch. 0 means eligible immediately.
	After int
	// Severity scales gray-failure kinds: a DegradedDevice fire makes
	// the operation take Severity x its base latency; a JitterLink fire
	// adds Severity x the base latency on top. Ignored by the
	// error-injecting kinds. Values at or below 1 make DegradedDevice a
	// no-op.
	Severity float64
}

// Event records one fired fault: fire number Seq of armed point Point.
type Event struct {
	Point  int // index of the armed point, in arm order
	Seq    int64
	Kind   Kind
	Target string
}

// String renders the event as "p<point>/<seq>:kind@target".
func (e Event) String() string {
	return fmt.Sprintf("p%d/%d:%s@%s", e.Point, e.Seq, e.Kind, e.Target)
}

// armedPoint is a Point plus its private RNG stream and fire log.
type armedPoint struct {
	Point
	rng    *sim.RNG
	checks int64
	fires  int64
	events []Event
}

// Injector is a seeded source of faults. All methods are safe for
// concurrent use. Each armed point draws from its own RNG stream, so
// determinism holds whenever every point individually sees its matching
// checks in a deterministic order — concurrent draws on *different*
// points never perturb each other.
type Injector struct {
	mu     sync.Mutex
	seed   uint64
	points []*armedPoint
	total  int64
}

// New returns an injector seeded with seed and no armed points.
func New(seed uint64) *Injector {
	return &Injector{seed: seed}
}

// pointSeed derives the RNG seed for the idx-th armed point via a
// splitmix64 step, so nearby seeds and indices give unrelated streams.
func pointSeed(seed uint64, idx int) uint64 {
	x := seed + (uint64(idx)+1)*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e9b5
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Arm adds a fault point. Points are consulted in arm order.
func (in *Injector) Arm(p Point) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.points = append(in.points, &armedPoint{
		Point: p,
		rng:   sim.NewRNG(pointSeed(in.seed, len(in.points))),
	})
}

// Fire asks whether a fault of the given kind strikes the target now.
// Only checks that match an armed, unexhausted point consume that
// point's randomness, so unrelated checks never perturb the schedule.
func (in *Injector) Fire(kind Kind, target string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fireLocked(kind, target) != nil
}

// fireLocked walks the armed points for a matching fire and returns the
// point that fired, or nil. Callers hold in.mu.
func (in *Injector) fireLocked(kind Kind, target string) *armedPoint {
	for i, ap := range in.points {
		if ap.Kind != kind || ap.Prob <= 0 {
			continue
		}
		if ap.Target != "" && !strings.HasPrefix(target, ap.Target) {
			continue
		}
		if ap.Budget > 0 && ap.fires >= int64(ap.Budget) {
			continue
		}
		ap.checks++
		if ap.checks <= int64(ap.After) {
			continue
		}
		if ap.Prob < 1 && ap.rng.Float64() >= ap.Prob {
			continue
		}
		ap.fires++
		in.total++
		ap.events = append(ap.events, Event{Point: i, Seq: ap.fires, Kind: kind, Target: target})
		return ap
	}
	return nil
}

// Slowdown asks whether a gray-failure fault of the given kind strikes
// the target now and, if so, returns the extra delay to add to an
// operation whose healthy latency is base: DegradedDevice stretches the
// operation to Severity x base (extra = base x (Severity-1)), JitterLink
// adds Severity x base on top. The extra delay is a deterministic
// function of the armed point — no randomness beyond the fire decision
// itself — so fixed-probability points yield byte-identical delay
// schedules under any goroutine interleaving. A zero return means the
// operation proceeds at full health.
func (in *Injector) Slowdown(kind Kind, target string, base time.Duration) time.Duration {
	if in == nil || base <= 0 {
		return 0
	}
	in.mu.Lock()
	ap := in.fireLocked(kind, target)
	in.mu.Unlock()
	if ap == nil {
		return 0
	}
	sev := ap.Severity
	switch kind {
	case DegradedDevice:
		if sev <= 1 {
			return 0
		}
		return time.Duration(float64(base) * (sev - 1))
	case JitterLink:
		if sev <= 0 {
			return 0
		}
		return time.Duration(float64(base) * sev)
	}
	return 0
}

// Events returns a copy of the fired-fault log: points in arm order,
// fires in order within each point.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	var out []Event
	for _, ap := range in.points {
		out = append(out, ap.events...)
	}
	return out
}

// Fires reports how many faults have fired so far.
func (in *Injector) Fires() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.total
}

// Schedule renders the fired-fault log one event per line, grouped by
// armed point. Two injectors with the same seed, the same armed points
// and the same per-point sequence of Fire calls produce byte-identical
// schedules, regardless of how checks of different points interleave.
func (in *Injector) Schedule() string {
	events := in.Events()
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Reset rewinds the injector to its freshly seeded state, clearing the
// event log and every point's spent budget but keeping the armed points.
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, ap := range in.points {
		ap.rng = sim.NewRNG(pointSeed(in.seed, i))
		ap.checks = 0
		ap.fires = 0
		ap.events = nil
	}
	in.total = 0
}

// LinkFaultCheck adapts the injector to fabric.Link.SetFaultCheck: each
// data transfer on the link asks whether a LinkFlap strikes.
func (in *Injector) LinkFaultCheck(linkName string) func() error {
	return func() error {
		if in.Fire(LinkFlap, linkName) {
			return &FaultError{Kind: LinkFlap, Target: linkName}
		}
		return nil
	}
}

// FaultError is the typed error surfaced by injected faults.
type FaultError struct {
	Kind   Kind
	Target string
}

// Error renders the fault.
func (e *FaultError) Error() string {
	return fmt.Sprintf("faults: injected %s on %s", e.Kind, e.Target)
}

// Transient reports whether retrying the failed operation can succeed.
// The gray-failure kinds are transient: a degraded device or jittery
// link still serves, so any error surfaced around them (a deadline
// blown by the slowdown, a hedge losing its race) is worth retrying
// elsewhere rather than failing the query. StickyCorrupt and
// DeviceOffline are permanent: the damage outlives any retry.
func (e *FaultError) Transient() bool {
	switch e.Kind {
	case TransientRead, ObjectMissing, LinkFlap, SlowStage, DegradedDevice, JitterLink:
		return true
	}
	return false
}

// transienter is the classification interface recovery layers test for;
// any error can opt into retryability by implementing it.
type transienter interface{ Transient() bool }

// IsTransient reports whether err (anywhere in its chain) marks itself
// as retryable.
func IsTransient(err error) bool {
	var t transienter
	return errors.As(err, &t) && t.Transient()
}
