// Command dfshell is an interactive SQL shell over the data-flow engine:
// it loads the generated lineitem/orders tables into a Figure 6 cluster
// and executes SELECT statements from stdin, printing results, the
// chosen placement, and the movement stats after each query.
//
//	go run ./cmd/dfshell [-rows N]
//
// Meta commands: \tables, \explain <sql>, \stats [<table>], \trace,
// \metrics, \scrub, \topo, \quit. Bare \stats toggles the full
// execution-stats block after each query; \trace toggles virtual-time
// tracing, printing a per-device span timeline and the concurrency
// factor; \metrics prints the live fleet registry — every query executed
// in the session lands on its counters, histograms and gauges; \scrub
// turns on self-healing storage (checksum verification + read-repair)
// the first time and runs one scrub + re-replication pass, printing the
// durability report. Prefixing a statement with EXPLAIN ANALYZE traces
// just that one query.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/obs/metrics"
	"repro/internal/repair"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

// stripExplainAnalyze removes a leading EXPLAIN ANALYZE
// (case-insensitive) from sql, reporting whether it was present.
func stripExplainAnalyze(sql string) (string, bool) {
	fields := strings.Fields(sql)
	if len(fields) >= 2 &&
		strings.EqualFold(fields[0], "EXPLAIN") && strings.EqualFold(fields[1], "ANALYZE") {
		rest := strings.TrimSpace(sql)[len(fields[0]):]
		rest = strings.TrimSpace(rest)
		return strings.TrimSpace(rest[len(fields[1]):]), true
	}
	return sql, false
}

func printTimeline(tr *obs.Trace) {
	if tr == nil {
		fmt.Println("(no trace recorded)")
		return
	}
	if err := tr.WriteGantt(os.Stdout, 64); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("makespan %s, resource busy %s, concurrency %.2f (mean active resources)\n",
		tr.Makespan(), tr.WorkBusy(), tr.ConcurrencyFactor())
}

func main() {
	rows := flag.Int("rows", 50000, "lineitem rows to generate")
	flag.Parse()

	cluster := fabric.NewCluster(fabric.DefaultClusterConfig())
	eng := core.NewDataFlowEngine(cluster)
	reg := metrics.New()
	eng.SetMetrics(reg)
	lcfg := workload.DefaultLineitemConfig(*rows)
	lcfg.Orders = int64(*rows / 4)
	must(eng.CreateTable("lineitem", workload.LineitemSchema()))
	must(eng.Load("lineitem", workload.GenLineitem(lcfg)))
	must(eng.CreateTable("orders", workload.OrdersSchema()))
	must(eng.Load("orders", workload.GenOrders(*rows/4, 7)))

	fmt.Printf("dfshell — data-flow engine over %s\n", cluster.Name)
	fmt.Printf("tables: lineitem (%d rows), orders (%d rows)\n", *rows, *rows/4)
	fmt.Println(`type SQL, or \tables \explain <sql> \stats [<table>] \trace \metrics \scrub \topo \quit`)

	showStats := false
	var ctrl *repair.Controller
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("df> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case line == `\tables`:
			for _, name := range eng.Storage.Tables() {
				schema, err := eng.TableSchema(name)
				if err != nil {
					continue
				}
				fmt.Printf("  %s %s\n", name, schema)
			}
		case line == `\topo`:
			fmt.Print(cluster.String())
		case line == `\metrics`:
			if err := reg.WriteText(os.Stdout); err != nil {
				fmt.Println("error:", err)
			}
		case line == `\trace`:
			eng.Tracing = !eng.Tracing
			if eng.Tracing {
				fmt.Println("tracing on: queries print a per-device span timeline")
			} else {
				fmt.Println("tracing off")
			}
		case line == `\scrub`:
			if ctrl == nil {
				ctrl = eng.EnableRepair(repair.Config{})
				fmt.Println("self-healing on: reads verify checksums and write back repairs")
			}
			sum := ctrl.ScrubPass(context.Background())
			ctrl.ReclonePass(context.Background())
			rep := ctrl.Stats()
			fmt.Printf("scrub: %d clean, %d corrupt (%d healed), %d lost\n",
				sum.Clean, sum.Corrupt, sum.Healed, sum.Lost)
			fmt.Printf("lifetime: read-repairs=%d scrub-heals=%d recloned=%d unrecoverable=%d at-risk=%d",
				rep.ReadRepairs, rep.ScrubRepairs, rep.Recloned, rep.Unrecoverable, rep.AtRiskObjects)
			if rep.LastMTTR > 0 {
				fmt.Printf(" mttr=%s", rep.LastMTTR)
			}
			fmt.Println()
		case line == `\stats`:
			showStats = !showStats
			if showStats {
				fmt.Println("stats on: queries print the full execution-stats block")
			} else {
				fmt.Println("stats off")
			}
		case strings.HasPrefix(line, `\stats `):
			name := strings.TrimSpace(strings.TrimPrefix(line, `\stats `))
			st, err := eng.Stats(name)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("  rows=%d bytes=%s\n", st.Rows, st.TotalBytes())
		case strings.HasPrefix(line, `\explain `):
			sql := strings.TrimPrefix(line, `\explain `)
			q, err := sqlparse.Parse(sql, eng)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			variants, err := eng.Plan(q, 0)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			for _, v := range variants {
				fmt.Print(v.Explain())
			}
		case strings.HasPrefix(line, `\`):
			fmt.Println("unknown meta command:", line)
		default:
			sql, analyze := stripExplainAnalyze(line)
			q, err := sqlparse.Parse(sql, eng)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			wasTracing := eng.Tracing
			if analyze {
				eng.Tracing = true
			}
			res, err := eng.Execute(context.Background(), q)
			eng.Tracing = wasTracing
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(res.Format(20))
			if showStats {
				fmt.Println(res.Stats.String())
			} else {
				fmt.Printf("-- %d rows via %q: moved %s, cpu %s, simtime %s\n",
					res.Rows(), res.Stats.Variant, res.Stats.MovedBytes,
					res.Stats.CPUBytes, res.Stats.SimTime)
			}
			if res.Trace != nil {
				printTimeline(res.Trace)
			}
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
