package core

import (
	"context"
	"testing"

	"repro/internal/fabric"
	"repro/internal/plan"
	"repro/internal/workload"
)

func TestDistributedGroupByMatchesSingleNode(t *testing.T) {
	df, _, cfg := newEngines(t)
	for _, q := range []*plan.Query{
		plan.NewQuery("lineitem").WithGroupBy(workload.PricingSummary()),
		plan.NewQuery("lineitem").
			WithFilter(workload.SelectivityFilter(cfg, 0.3)).
			WithGroupBy(workload.PartVolume()),
	} {
		single, err := df.Execute(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		dist, err := df.ExecuteGroupByDistributed(context.Background(), q, 2)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, single, dist)
	}
}

func TestDistributedGroupBySpreadsWork(t *testing.T) {
	df, _, _ := newEngines(t)
	q := plan.NewQuery("lineitem").WithGroupBy(workload.PartVolume())
	res, err := df.ExecuteGroupByDistributed(context.Background(), q, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if res.Stats.DeviceBusy[fabric.ComputeDev(i, "cpu")] == 0 {
			t.Errorf("node %d CPU idle in distributed group-by", i)
		}
	}
	// The NIC did the partitioning, not a CPU.
	if res.Stats.DeviceBusy[fabric.DevStorageNIC] == 0 {
		t.Error("storage NIC idle: scatter ran elsewhere")
	}
}

func TestDistributedGroupByValidation(t *testing.T) {
	df, _, _ := newEngines(t)
	if _, err := df.ExecuteGroupByDistributed(context.Background(), plan.NewQuery("lineitem").WithCount(), 2); err == nil {
		t.Error("count-only accepted")
	}
	q := plan.NewQuery("lineitem").WithGroupBy(workload.PricingSummary())
	if _, err := df.ExecuteGroupByDistributed(context.Background(), q, 99); err == nil {
		t.Error("too many nodes accepted")
	}
	if _, err := df.ExecuteGroupByDistributed(context.Background(), plan.NewQuery("ghost").WithGroupBy(workload.PricingSummary()), 2); err == nil {
		t.Error("unknown table accepted")
	}
}
