package fabric

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// Property: on random connected topologies, Path returns a well-formed
// route — it starts at the source, ends at the destination, consecutive
// links share endpoints, and no link repeats.
func TestPathWellFormedProperty(t *testing.T) {
	f := func(seed uint64, extraEdges uint8) bool {
		rng := sim.NewRNG(seed)
		const n = 12
		top := NewTopology("random")
		for i := 0; i < n; i++ {
			top.AddDevice(NewMemory(fmt.Sprintf("d%d", i)))
		}
		// Spanning chain guarantees connectivity.
		for i := 1; i < n; i++ {
			top.Connect(fmt.Sprintf("d%d", i-1), fmt.Sprintf("d%d", i),
				LinkDDR, sim.GBPerSec, sim.Microsecond)
		}
		// Random extra edges.
		for e := 0; e < int(extraEdges%20); e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			top.Connect(fmt.Sprintf("d%d", a), fmt.Sprintf("d%d", b),
				LinkPCIe4, 2*sim.GBPerSec, sim.Microsecond)
		}
		src := fmt.Sprintf("d%d", rng.Intn(n))
		dst := fmt.Sprintf("d%d", rng.Intn(n))
		path, err := top.Path(src, dst)
		if err != nil {
			return false
		}
		if src == dst {
			return len(path) == 0
		}
		seen := map[string]bool{}
		at := src
		for _, l := range path {
			next := l.Other(at)
			if next == "" || seen[l.Name] {
				return false
			}
			seen[l.Name] = true
			at = next
		}
		return at == dst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: the shortest path never exceeds the spanning-chain distance.
func TestPathNoLongerThanChainProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		const n = 10
		top := NewTopology("chain")
		for i := 0; i < n; i++ {
			top.AddDevice(NewMemory(fmt.Sprintf("d%d", i)))
		}
		for i := 1; i < n; i++ {
			top.Connect(fmt.Sprintf("d%d", i-1), fmt.Sprintf("d%d", i),
				LinkDDR, sim.GBPerSec, 0)
		}
		a, b := rng.Intn(n), rng.Intn(n)
		path, err := top.Path(fmt.Sprintf("d%d", a), fmt.Sprintf("d%d", b))
		if err != nil {
			return false
		}
		dist := a - b
		if dist < 0 {
			dist = -dist
		}
		return len(path) == dist
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
