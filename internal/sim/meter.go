package sim

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Meter accumulates traffic and busy time for one simulated resource
// (a device or a link). All methods are safe for concurrent use; pipeline
// stages run on separate goroutines and charge their own costs.
type Meter struct {
	bytes    atomic.Int64 // payload bytes processed or moved
	busy     atomic.Int64 // virtual nanoseconds of busy time
	ops      atomic.Int64 // discrete operations (transfers, kernel launches)
	messages atomic.Int64 // protocol/control messages (credits, invalidations)
}

// AddBytes charges n payload bytes to the meter.
func (m *Meter) AddBytes(n Bytes) { m.bytes.Add(int64(n)) }

// AddBusy charges t of virtual busy time to the meter.
func (m *Meter) AddBusy(t VTime) { m.busy.Add(int64(t)) }

// AddOps charges n discrete operations.
func (m *Meter) AddOps(n int64) { m.ops.Add(n) }

// AddMessages charges n protocol messages (e.g. credit grants, coherency
// invalidations). Counted separately so experiments can report the
// control-traffic overhead the paper claims is low (Section 7.1).
func (m *Meter) AddMessages(n int64) { m.messages.Add(n) }

// Bytes reports total payload bytes charged so far.
func (m *Meter) Bytes() Bytes { return Bytes(m.bytes.Load()) }

// Busy reports total virtual busy time charged so far.
func (m *Meter) Busy() VTime { return VTime(m.busy.Load()) }

// Ops reports total discrete operations charged so far.
func (m *Meter) Ops() int64 { return m.ops.Load() }

// Messages reports total protocol messages charged so far.
func (m *Meter) Messages() int64 { return m.messages.Load() }

// Reset zeroes all counters.
func (m *Meter) Reset() {
	m.bytes.Store(0)
	m.busy.Store(0)
	m.ops.Store(0)
	m.messages.Store(0)
}

// Snapshot is a point-in-time copy of a Meter's counters.
type Snapshot struct {
	Bytes    Bytes
	Busy     VTime
	Ops      int64
	Messages int64
}

// Snapshot returns a copy of the current counters.
func (m *Meter) Snapshot() Snapshot {
	return Snapshot{
		Bytes:    m.Bytes(),
		Busy:     m.Busy(),
		Ops:      m.Ops(),
		Messages: m.Messages(),
	}
}

// Sub returns the counter deltas s minus prev. Used to isolate the cost of
// one query on meters that persist across queries.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	return Snapshot{
		Bytes:    s.Bytes - prev.Bytes,
		Busy:     s.Busy - prev.Busy,
		Ops:      s.Ops - prev.Ops,
		Messages: s.Messages - prev.Messages,
	}
}

// MeterSet is a named collection of meters, used by topologies to expose
// per-device and per-link accounting by name.
type MeterSet struct {
	mu     sync.Mutex
	meters map[string]*Meter
}

// NewMeterSet returns an empty MeterSet.
func NewMeterSet() *MeterSet {
	return &MeterSet{meters: make(map[string]*Meter)}
}

// Get returns the meter registered under name, creating it on first use.
func (s *MeterSet) Get(name string) *Meter {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.meters[name]
	if !ok {
		m = &Meter{}
		s.meters[name] = m
	}
	return m
}

// Names returns the registered meter names in sorted order.
func (s *MeterSet) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.meters))
	for n := range s.meters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ResetAll zeroes every registered meter.
func (s *MeterSet) ResetAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, m := range s.meters {
		m.Reset()
	}
}

// Snapshots returns a copy of every meter's counters keyed by name.
func (s *MeterSet) Snapshots() map[string]Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]Snapshot, len(s.meters))
	for n, m := range s.meters {
		out[n] = m.Snapshot()
	}
	return out
}
