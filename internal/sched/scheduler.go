// Package sched implements the paper's Section 7.3 scheduling layer.
// Interference is the enemy of sustained performance: when two plans
// contend for a link or accelerator, arbitration and re-acquisition
// overheads eat throughput. The scheduler therefore (a) selects among
// each query's plan *variants* at admission time, steering new work away
// from loaded resources, (b) rate-limits the DMA bandwidth of plans
// sharing a link so each gets a fair, predictable share, and (c) bounds
// the number of concurrently running plans, queueing or shedding the
// rest so overload degrades into fast rejections instead of collapse.
package sched

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/obs/metrics"
	"repro/internal/plan"
	"repro/internal/resilience"
	"repro/internal/sim"
)

// ErrOverloaded is returned when admission control sheds a query: the
// admit queue is full, or the projected queue wait already exceeds the
// caller's deadline. Shed queries never held resources, so callers can
// fail fast or retry elsewhere without cleanup.
var ErrOverloaded = errors.New("sched: overloaded")

// Admission is one admitted plan execution. Callers must Release it when
// the query finishes.
type Admission struct {
	ID      int64
	Plan    *plan.Physical
	Variant string
	// Cost is the optimizer's virtual-time estimate for the chosen
	// variant, used to calibrate projected queue waits.
	Cost sim.VTime

	links    []*fabric.Link
	devices  []string // placed devices holding worker slots
	slots    int      // worker slots held on each of those devices
	admitted time.Time
}

// waiter is one query parked in the bounded admit queue.
type waiter struct {
	variants []*plan.Physical
	ready    chan struct{}
	adm      *Admission
	err      error
}

// Scheduler tracks active plans and the load they put on fabric links.
type Scheduler struct {
	mu       sync.Mutex
	nextID   int64
	active   map[int64]*Admission
	linkLoad map[*fabric.Link]int
	queue    []*waiter

	// ContentionPenalty is the rank-score penalty per already-active
	// plan on a link the candidate variant would use. Higher values
	// steer harder toward idle resources.
	ContentionPenalty float64
	// FairShare, when set, rate-limits every link to bandwidth/k while
	// k admitted plans share it (Section 7.3's DMA rate limiting).
	FairShare bool
	// FailurePenalty is the rank-score penalty per recorded failover on a
	// device the candidate variant places work on. Admission steers new
	// queries away from recently flaky devices without banning them.
	FailurePenalty float64
	// FailureDecay multiplies every device's failure score on each
	// successful admission, so a device that stops failing regains work
	// instead of being penalized forever. 1 disables decay.
	FailureDecay float64
	// MaxFailureScore caps a device's accumulated failure score so a
	// long outage doesn't take unboundedly long to forgive.
	MaxFailureScore float64
	// MaxActive bounds concurrently admitted plans; 0 means unbounded
	// (no admission control, the pre-lifecycle behavior).
	MaxActive int
	// QueueCap bounds the admit queue when MaxActive is set. A query
	// arriving to a full queue is shed with ErrOverloaded. 0 means an
	// unbounded queue.
	QueueCap int
	// Workers is the worker-pool width admitted queries will run with
	// (the engine's intra-query parallelism); 0 or 1 means serial. Each
	// admission reserves that many worker slots on every device the
	// chosen variant places work on, and WorkerSlotPenalty scores
	// candidates by how far those reservations oversubscribe a device's
	// replicated units (fabric.Device.Units) — a four-core CPU already
	// running one four-worker plan is a worse home for the next one than
	// an idle accelerator, even if the idle device ranks lower statically.
	Workers int
	// WorkerSlotPenalty is the rank-score penalty per fully oversubscribed
	// device (scaled by the oversubscription ratio); 0 disables worker-
	// slot awareness.
	WorkerSlotPenalty float64
	// Breakers, when set, consults a per-device circuit breaker at
	// admission: a variant placing work on a device whose breaker
	// rejects it (open, or half-open with its probe slots spent) is
	// penalized by BreakerPenalty per such device rather than banned, so
	// a fabric whose every variant is broken degrades to serve-slow
	// instead of shedding. Allow is asked once per distinct device per
	// admission, which doubles as the half-open probe stream; the
	// engines report the executed plan's outcomes back via
	// Success/Failure.
	Breakers *resilience.BreakerSet
	// BreakerPenalty is the rank-score penalty per breaker-rejected
	// device a variant places work on.
	BreakerPenalty float64
	// DegradedPenalty is the rank-score penalty per gray-failed device
	// (fabric.Device.IsDegraded) a variant places work on: slow-but-
	// alive devices lose ties to healthy ones without being excluded.
	DegradedPenalty float64
	// Metrics, when set, receives continuous admission telemetry:
	// sched.admitted / sched.shed.* counters, sched.queue.depth and
	// sched.active gauges, and the EWMA service-time gauge. Nil is off
	// (the obs discipline) and costs nothing.
	Metrics *metrics.Registry
	// SLO, when set together with SLOShedBurnRate, lets admission read
	// the fleet's SLO burn rate: while the burn is at or above the
	// threshold, arrivals that would otherwise queue are shed with
	// ErrOverloaded instead — the queue is exactly the latency the SLO
	// is already missing, so parking more work behind it only converts
	// future budget into present queueing. The engines feed the tracker
	// with per-query wall latency; admission only reads it.
	SLO *metrics.SLOTracker
	// SLOShedBurnRate is the burn-rate threshold for SLO shedding;
	// 0 disables it. 1 sheds as soon as the error budget is being
	// consumed at the objective's limit; higher values tolerate short
	// bursts and shed only on clear overload.
	SLOShedBurnRate float64
	// RepairBurnRate is the admission threshold for the background
	// repair class: AllowRepair defers repair work while the SLO burn
	// rate is at or above it, so scrub and re-replication I/O yields the
	// device queues to a foreground that is already missing its
	// objective. 0 admits repair unconditionally.
	RepairBurnRate float64

	failures    map[string]float64 // device name -> decayed failover score
	deviceSlots map[string]int     // device name -> worker slots held by active plans

	// ewmaService tracks mean admit->release wall time; ewmaCost tracks
	// the mean optimizer estimate of released plans. Together they
	// translate a queued plan's EstTime into projected wall-clock wait.
	ewmaService time.Duration
	ewmaCost    sim.VTime
}

// DefaultFailurePenalty is a fresh scheduler's per-failure score
// penalty; two recorded failures outweigh one rank position plus typical
// contention, so flaky devices lose ties quickly.
const DefaultFailurePenalty = 2.0

// DefaultFailureDecay forgives ~20% of a device's failure score per
// admission: after one failover a device is back below half a rank
// position of penalty within ~8 admitted queries.
const DefaultFailureDecay = 0.8

// DefaultMaxFailureScore caps the failure score; with the default decay
// a saturated device is forgiven within ~20 admissions.
const DefaultMaxFailureScore = 8.0

// DefaultBreakerPenalty outweighs several rank positions plus typical
// contention: a tripped device only wins when no healthy variant exists.
const DefaultBreakerPenalty = 4.0

// DefaultDegradedPenalty sits between contention and failure penalties:
// a gray-failed device loses ties but is not shunned as hard as one
// that errored outright.
const DefaultDegradedPenalty = 2.0

// New returns an empty scheduler with fair sharing enabled and no
// admission bound (set MaxActive to enable overload control).
func New() *Scheduler {
	return &Scheduler{
		active:            make(map[int64]*Admission),
		linkLoad:          make(map[*fabric.Link]int),
		failures:          make(map[string]float64),
		deviceSlots:       make(map[string]int),
		ContentionPenalty: 1.0,
		FailurePenalty:    DefaultFailurePenalty,
		FailureDecay:      DefaultFailureDecay,
		MaxFailureScore:   DefaultMaxFailureScore,
		WorkerSlotPenalty: 1.0,
		BreakerPenalty:    DefaultBreakerPenalty,
		DegradedPenalty:   DefaultDegradedPenalty,
		FairShare:         true,
	}
}

// AllowRepair is the background repair class's admission check: repair
// traffic (scrub reads, write-backs, re-clones) asks before each
// quantum of work and defers while the SLO burn rate is at or above
// RepairBurnRate — durability work must not finish off a tail that
// foreground queries are already losing. Decisions are counted as
// sched.repair.admitted / sched.repair.deferred. A nil scheduler or an
// unset threshold admits everything: repair then paces only on its own
// token budget.
func (s *Scheduler) AllowRepair() bool {
	if s == nil {
		return true
	}
	if s.SLO != nil && s.RepairBurnRate > 0 && s.SLO.BurnRate() >= s.RepairBurnRate {
		s.Metrics.Counter("sched.repair.deferred").Inc()
		return false
	}
	s.Metrics.Counter("sched.repair.admitted").Inc()
	return true
}

// NoteFailover records that a query failed over away from the named
// device; future admissions penalize variants placing work there. The
// score is capped so even a chronically flaky device is forgiven within
// a bounded number of clean admissions once it recovers.
func (s *Scheduler) NoteFailover(device string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	score := s.failures[device] + 1
	if s.MaxFailureScore > 0 && score > s.MaxFailureScore {
		score = s.MaxFailureScore
	}
	s.failures[device] = score
}

// DeviceFailures reports the failovers currently held against a device,
// rounded; decay erodes the score between failures.
func (s *Scheduler) DeviceFailures(device string) int {
	return int(math.Round(s.FailureScore(device)))
}

// FailureScore reports the decayed failure score held against a device.
func (s *Scheduler) FailureScore(device string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failures[device]
}

// decayFailuresLocked erodes every failure score by FailureDecay; called
// once per successful admission so recovered devices regain work at a
// rate proportional to how busy the system is.
func (s *Scheduler) decayFailuresLocked() {
	if s.FailureDecay <= 0 || s.FailureDecay >= 1 {
		return
	}
	for dev, score := range s.failures {
		score *= s.FailureDecay
		if score < 0.05 {
			delete(s.failures, dev)
			continue
		}
		s.failures[dev] = score
	}
}

// variantLinks collects the distinct links a variant's data crosses.
func variantLinks(p *plan.Physical) []*fabric.Link {
	seen := map[*fabric.Link]bool{}
	var out []*fabric.Link
	for _, site := range p.Path.Sites {
		for _, l := range site.ToNext {
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	return out
}

// variantDevices collects the distinct devices a variant places
// operators on, in site order.
func variantDevices(p *plan.Physical) []*fabric.Device {
	placed := map[int]bool{}
	for _, pl := range p.Placements {
		placed[pl.SiteIdx] = true
	}
	seen := map[string]bool{}
	var out []*fabric.Device
	for i, site := range p.Path.Sites {
		if placed[i] && !seen[site.Device.Name] {
			seen[site.Device.Name] = true
			out = append(out, site.Device)
		}
	}
	return out
}

// variantOffline reports whether the variant places work on a device
// that is currently offline.
func variantOffline(p *plan.Physical) bool {
	seen := map[int]bool{}
	for _, pl := range p.Placements {
		seen[pl.SiteIdx] = true
	}
	for i, site := range p.Path.Sites {
		if seen[i] && site.Device.IsOffline() {
			return true
		}
	}
	return false
}

// Admit picks the least-interfering variant from the ranked candidates
// (best-ranked first, as returned by plan.Optimizer.Enumerate) and
// reserves its links. The choice trades the optimizer's static rank
// against current contention and recorded device failures: an idle
// lower-ranked variant can win over a loaded or flaky top-ranked one.
// Variants that place work on offline devices are inadmissible.
//
// When MaxActive is set and all slots are busy the query queues (FIFO).
// Admission sheds with ErrOverloaded instead of queueing when the queue
// is at QueueCap, or when ctx carries a deadline the projected queue
// wait would already blow. A deadline or cancellation that fires while
// queued also sheds. Shed queries hold no resources.
func (s *Scheduler) Admit(ctx context.Context, variants []*plan.Physical) (*Admission, error) {
	if len(variants) == 0 {
		return nil, fmt.Errorf("sched: no variants to admit")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s.Metrics.Counter("sched.admit.requests").Inc()
	s.mu.Lock()
	if err := ctx.Err(); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	// Fast path: a free slot and nobody queued ahead.
	if s.MaxActive <= 0 || (len(s.active) < s.MaxActive && len(s.queue) == 0) {
		adm, err := s.admitLocked(variants)
		s.mu.Unlock()
		return adm, err
	}
	// All slots busy (or a queue has formed): shed or queue.
	if s.QueueCap > 0 && len(s.queue) >= s.QueueCap {
		nq, na := len(s.queue), len(s.active)
		s.mu.Unlock()
		s.shedMetric("queue_full")
		return nil, fmt.Errorf("%w: admit queue full (%d queued, %d active)", ErrOverloaded, nq, na)
	}
	// SLO burn-rate shedding: the proactive arm. Queueing is only worth
	// it while the SLO still has budget for the wait; once the burn rate
	// says the budget is being spent faster than the objective allows,
	// new arrivals are refused before they park.
	if s.SLO != nil && s.SLOShedBurnRate > 0 {
		if burn := s.SLO.BurnRate(); burn >= s.SLOShedBurnRate {
			s.mu.Unlock()
			s.shedMetric("slo_burn")
			return nil, fmt.Errorf("%w: SLO burn rate %.2f at shed threshold %.2f", ErrOverloaded, burn, s.SLOShedBurnRate)
		}
	}
	if dl, ok := ctx.Deadline(); ok {
		if wait := s.projectedWaitLocked(); wait > 0 && time.Now().Add(wait).After(dl) {
			s.mu.Unlock()
			s.shedMetric("deadline")
			return nil, fmt.Errorf("%w: projected queue wait %v exceeds deadline", ErrOverloaded, wait.Round(time.Microsecond))
		}
	}
	w := &waiter{variants: variants, ready: make(chan struct{})}
	s.queue = append(s.queue, w)
	s.Metrics.Counter("sched.queued").Inc()
	s.Metrics.Gauge("sched.queue.depth").Set(float64(len(s.queue)))
	s.mu.Unlock()

	select {
	case <-w.ready:
		return w.adm, w.err
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case <-w.ready:
			// Lost the race: a releaser already granted us the slot.
			// Hand it back to the caller, whose next ctx check unwinds.
			s.mu.Unlock()
			return w.adm, w.err
		default:
		}
		for i, q := range s.queue {
			if q == w {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.Metrics.Gauge("sched.queue.depth").Set(float64(len(s.queue)))
		s.mu.Unlock()
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			s.shedMetric("deadline")
			return nil, fmt.Errorf("%w: deadline expired in admit queue", ErrOverloaded)
		}
		s.Metrics.Counter("sched.queue.cancelled").Inc()
		return nil, ctx.Err()
	}
}

// admitLocked scores the variants and reserves the winner's links.
func (s *Scheduler) admitLocked(variants []*plan.Physical) (*Admission, error) {
	type scored struct {
		idx  int
		cost float64
	}
	workers := s.Workers
	if workers < 1 {
		workers = 1
	}
	// Ask each distinct device's breaker once per admission — the
	// consolidated answer scores every variant, and the Allow stream
	// doubles as half-open probing (unclaimed probe slots replenish
	// after a cooldown).
	blocked := map[string]bool{}
	if s.Breakers != nil {
		asked := map[string]bool{}
		for _, v := range variants {
			for _, d := range variantDevices(v) {
				if asked[d.Name] {
					continue
				}
				asked[d.Name] = true
				if !s.Breakers.Allow(d.Name) {
					blocked[d.Name] = true
				}
			}
		}
	}
	var scores []scored
	for i, v := range variants {
		if variantOffline(v) {
			continue
		}
		contention := 0
		for _, l := range variantLinks(v) {
			contention += s.linkLoad[l]
		}
		failed := 0.0
		for _, name := range v.PlacedDevices() {
			failed += s.failures[name]
		}
		// Worker-slot pressure: placing this plan's worker pool on a
		// device already holding slots beyond its replicated units
		// serializes both plans' lanes; penalize by how far over.
		// Breaker-rejected and gray-degraded devices are scored down,
		// not banned: when every variant is broken, the least-broken
		// one still serves (slow) instead of shedding the query.
		over, broken, degraded := 0.0, 0.0, 0.0
		for _, d := range variantDevices(v) {
			u := d.Units()
			if load := s.deviceSlots[d.Name] + workers; load > u {
				over += float64(load-u) / float64(u)
			}
			if blocked[d.Name] {
				broken++
			}
			if d.IsDegraded() {
				degraded++
			}
		}
		cost := float64(i) + s.ContentionPenalty*float64(contention) +
			s.FailurePenalty*failed + s.WorkerSlotPenalty*over +
			s.BreakerPenalty*broken + s.DegradedPenalty*degraded
		scores = append(scores, scored{idx: i, cost: cost})
	}
	if len(scores) == 0 {
		return nil, fmt.Errorf("sched: all %d variants place work on offline devices", len(variants))
	}
	sort.SliceStable(scores, func(a, b int) bool { return scores[a].cost < scores[b].cost })
	chosen := variants[scores[0].idx]

	s.nextID++
	adm := &Admission{
		ID:       s.nextID,
		Plan:     chosen,
		Variant:  chosen.Variant,
		Cost:     chosen.EstTime,
		links:    variantLinks(chosen),
		slots:    workers,
		admitted: time.Now(),
	}
	for _, d := range variantDevices(chosen) {
		adm.devices = append(adm.devices, d.Name)
		s.deviceSlots[d.Name] += workers
	}
	s.active[adm.ID] = adm
	for _, l := range adm.links {
		s.linkLoad[l]++
	}
	s.Metrics.Counter("sched.admitted").Inc()
	s.Metrics.Gauge("sched.active").Set(float64(len(s.active)))
	s.decayFailuresLocked()
	s.rebalanceLocked()
	return adm, nil
}

// shedMetric counts one shed, by reason and in total.
func (s *Scheduler) shedMetric(reason string) {
	if s.Metrics == nil {
		return
	}
	s.Metrics.Counter("sched.shed").Inc()
	s.Metrics.Counter("sched.shed." + reason).Inc()
}

// projectedWaitLocked estimates how long a new arrival would sit in the
// admit queue, from the EWMA of observed service times scaled by each
// queued plan's optimizer cost estimate. Zero when there is no service
// history yet (first queries are given the benefit of the doubt).
func (s *Scheduler) projectedWaitLocked() time.Duration {
	if s.MaxActive <= 0 || s.ewmaService <= 0 {
		return 0
	}
	scale := func(p *plan.Physical) float64 {
		if s.ewmaCost > 0 && p != nil && p.EstTime > 0 {
			return float64(p.EstTime) / float64(s.ewmaCost)
		}
		return 1
	}
	// Work ahead of the new arrival, in units of mean service times: the
	// running plans have on average half a service left; every queued
	// plan needs a full one, weighted by its cost estimate.
	ahead := 0.5 * float64(len(s.active))
	for _, w := range s.queue {
		ahead += scale(w.variants[0])
	}
	return time.Duration(ahead / float64(s.MaxActive) * float64(s.ewmaService))
}

// AdmitTraced is Admit plus an admission event on the trace: which
// variant won, out of how many candidates, and what it placed where —
// the placement decision a timeline reader needs to interpret the
// stage tracks that follow. Shedding also leaves an event, so overload
// is visible on the same timeline. A nil trace reduces to plain Admit.
func (s *Scheduler) AdmitTraced(ctx context.Context, variants []*plan.Physical, tr *obs.Trace) (*Admission, error) {
	adm, err := s.Admit(ctx, variants)
	if err != nil {
		if tr.Enabled() && errors.Is(err, ErrOverloaded) {
			tr.AddEvent(obs.Event{
				Name:   "shed",
				Track:  "sched",
				At:     0,
				Detail: err.Error(),
			})
		}
		return nil, err
	}
	if tr.Enabled() {
		tr.AddEvent(obs.Event{
			Name:  "admit",
			Track: "sched",
			At:    0,
			Detail: fmt.Sprintf("variant %q chosen from %d candidates; devices %v",
				adm.Variant, len(variants), adm.Plan.PlacedDevices()),
		})
	}
	return adm, nil
}

// Release returns an admission's resources, recomputes fair shares, and
// hands freed slots to queued waiters in FIFO order. Releasing twice is
// a caller bug and panics.
func (s *Scheduler) Release(adm *Admission) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.active[adm.ID]; !ok {
		panic(fmt.Sprintf("sched: double release of admission %d", adm.ID))
	}
	delete(s.active, adm.ID)
	for _, l := range adm.links {
		s.linkLoad[l]--
		if s.linkLoad[l] <= 0 {
			delete(s.linkLoad, l)
		}
	}
	for _, name := range adm.devices {
		s.deviceSlots[name] -= adm.slots
		if s.deviceSlots[name] <= 0 {
			delete(s.deviceSlots, name)
		}
	}
	if !adm.admitted.IsZero() {
		s.observeServiceLocked(time.Since(adm.admitted), adm.Cost)
	}
	s.rebalanceLocked()
	// Grant freed slots to waiters. The releaser admits on the waiter's
	// behalf under the lock, so a concurrent fast-path Admit cannot
	// steal the slot between signal and wake-up.
	for len(s.queue) > 0 && (s.MaxActive <= 0 || len(s.active) < s.MaxActive) {
		w := s.queue[0]
		s.queue = s.queue[1:]
		w.adm, w.err = s.admitLocked(w.variants)
		close(w.ready)
	}
	s.Metrics.Gauge("sched.active").Set(float64(len(s.active)))
	s.Metrics.Gauge("sched.queue.depth").Set(float64(len(s.queue)))
}

// observeServiceLocked folds one completed execution into the EWMAs.
func (s *Scheduler) observeServiceLocked(dur time.Duration, cost sim.VTime) {
	const keep = 7 // 0.7 old, 0.3 new
	if dur > 0 {
		if s.ewmaService <= 0 {
			s.ewmaService = dur
		} else {
			s.ewmaService = (keep*s.ewmaService + (10-keep)*dur) / 10
		}
	}
	if cost > 0 {
		if s.ewmaCost <= 0 {
			s.ewmaCost = cost
		} else {
			s.ewmaCost = (keep*s.ewmaCost + (10-keep)*cost) / 10
		}
	}
	s.Metrics.Gauge("sched.ewma.service.ns").Set(float64(s.ewmaService))
}

// rebalanceLocked applies fair-share rate limits to every tracked link.
func (s *Scheduler) rebalanceLocked() {
	if !s.FairShare {
		return
	}
	// Collect all links seen in active admissions (including ones whose
	// load just dropped to zero, to clear their limit).
	seen := map[*fabric.Link]bool{}
	for _, adm := range s.active {
		for _, l := range adm.links {
			seen[l] = true
		}
	}
	for l := range seen {
		k := s.linkLoad[l]
		if k <= 1 {
			l.SetRateLimit(0)
		} else {
			l.SetRateLimit(l.Bandwidth / sim.Rate(k))
		}
	}
}

// ClearLimits removes every rate limit the scheduler has set; use after
// draining all admissions in tests and experiments.
func (s *Scheduler) ClearLimits() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for l := range s.linkLoad {
		l.SetRateLimit(0)
	}
}

// ActiveCount reports the number of admitted, unreleased plans.
func (s *Scheduler) ActiveCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.active)
}

// QueueDepth reports how many queries are parked in the admit queue.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.queue)
}

// SetWorkers records the worker-pool width future admissions reserve;
// engines call it when their intra-query parallelism changes.
func (s *Scheduler) SetWorkers(w int) {
	s.mu.Lock()
	s.Workers = w
	s.mu.Unlock()
}

// DeviceSlots reports the worker slots active plans hold on a device.
func (s *Scheduler) DeviceSlots(device string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deviceSlots[device]
}

// LinkLoad reports how many active plans use the link.
func (s *Scheduler) LinkLoad(l *fabric.Link) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.linkLoad[l]
}
