// Command dfquery loads a generated lineitem table and runs one query on
// the chosen engine, printing the plan variants, the result, and the
// execution stats — a quick way to see where the optimizer places
// operators along the data path and what that does to data movement.
//
// Usage:
//
//	dfquery [-engine dataflow|volcano|both] [-rows N] [-query pricing|filter|count|parts]
//	        [-sql "SELECT ..."] [-variant name] [-fabric smart|legacy] [-explain]
//
// With -sql, the statement is parsed against the lineitem schema
// (columns l_orderkey, l_partkey, l_suppkey, l_quantity,
// l_extendedprice, l_discount, l_shipdate, l_returnflag, l_comment),
// e.g.:
//
//	dfquery -sql "SELECT l_returnflag, COUNT(*), SUM(l_quantity) FROM lineitem
//	              WHERE l_shipdate BETWEEN 0 AND 500 GROUP BY l_returnflag"
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/columnar"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

// staticCatalog resolves SQL table names before any engine is built.
type staticCatalog struct{}

func (staticCatalog) TableSchema(name string) (*columnar.Schema, error) {
	if name != "lineitem" {
		return nil, fmt.Errorf("unknown table %q (dfquery serves the generated lineitem)", name)
	}
	return workload.LineitemSchema(), nil
}

func buildQuery(name string, cfg workload.LineitemConfig) (*plan.Query, error) {
	switch name {
	case "pricing":
		return plan.NewQuery("lineitem").
			WithFilter(workload.SelectivityFilter(cfg, 0.1)).
			WithGroupBy(workload.PricingSummary()), nil
	case "filter":
		return plan.NewQuery("lineitem").
			WithFilter(workload.SelectivityFilter(cfg, 0.01)).
			WithProjection(workload.LOrderKey, workload.LExtendedPrice), nil
	case "count":
		return plan.NewQuery("lineitem").
			WithFilter(workload.SelectivityFilter(cfg, 0.25)).
			WithCount(), nil
	case "parts":
		return plan.NewQuery("lineitem").WithGroupBy(workload.PartVolume()).
			WithOrderBy(1).WithLimit(10), nil
	}
	return nil, fmt.Errorf("unknown query %q (want pricing|filter|count|parts)", name)
}

func main() {
	engine := flag.String("engine", "both", "dataflow, volcano or both")
	rows := flag.Int("rows", 50000, "lineitem rows to generate")
	queryName := flag.String("query", "pricing", "query template: pricing|filter|count|parts")
	sqlText := flag.String("sql", "", "SQL SELECT over the lineitem table (overrides -query)")
	variant := flag.String("variant", "", "force a dataflow plan variant (e.g. cpu-only)")
	fabricKind := flag.String("fabric", "smart", "smart or legacy cluster for the dataflow engine")
	explain := flag.Bool("explain", false, "print all plan variants before executing")
	maxRows := flag.Int("maxrows", 10, "result rows to print")
	flag.Parse()

	cfg := workload.DefaultLineitemConfig(*rows)
	data := workload.GenLineitem(cfg)
	var q *plan.Query
	var err error
	if *sqlText != "" {
		q, err = sqlparse.Parse(*sqlText, staticCatalog{})
	} else {
		q, err = buildQuery(*queryName, cfg)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n\n", q)

	if *engine == "dataflow" || *engine == "both" {
		ccfg := fabric.DefaultClusterConfig()
		if *fabricKind == "legacy" {
			ccfg = fabric.LegacyClusterConfig()
		}
		eng := core.NewDataFlowEngine(fabric.NewCluster(ccfg))
		must(eng.CreateTable("lineitem", workload.LineitemSchema()))
		must(eng.Load("lineitem", data))

		variants, err := eng.Plan(q, 0)
		if err != nil {
			log.Fatal(err)
		}
		if *explain {
			for _, v := range variants {
				fmt.Println(v.Explain())
			}
		}
		chosen := variants[0]
		if *variant != "" {
			chosen = nil
			for _, v := range variants {
				if v.Variant == *variant {
					chosen = v
				}
			}
			if chosen == nil {
				log.Fatalf("variant %q not produced; available: %v", *variant, variantNames(variants))
			}
		}
		res, err := eng.ExecutePlan(chosen)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- dataflow (%s fabric, variant %s) ---\n", *fabricKind, chosen.Variant)
		fmt.Print(res.Format(*maxRows))
		fmt.Println(res.Stats.String())
	}

	if *engine == "volcano" || *engine == "both" {
		eng := core.NewVolcanoEngine(fabric.NewCluster(fabric.LegacyClusterConfig()), 512*sim.MB)
		must(eng.CreateTable("lineitem", workload.LineitemSchema()))
		must(eng.Load("lineitem", data))
		res, err := eng.Execute(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("--- volcano (legacy fabric, buffer pool) ---")
		fmt.Print(res.Format(*maxRows))
		fmt.Println(res.Stats.String())
	}
}

func variantNames(vs []*plan.Physical) []string {
	names := make([]string, len(vs))
	for i, v := range vs {
		names[i] = v.Variant
	}
	return names
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
