package core

import (
	"context"
	"testing"

	"repro/internal/fabric"
	"repro/internal/plan"
	"repro/internal/workload"
)

func TestSecureWireSameAnswers(t *testing.T) {
	cfg := workload.DefaultLineitemConfig(15000)
	data := workload.GenLineitem(cfg)

	build := func(secure bool) *DataFlowEngine {
		e := NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
		e.SecureWire = secure
		if err := e.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
			t.Fatal(err)
		}
		if err := e.Load("lineitem", data); err != nil {
			t.Fatal(err)
		}
		return e
	}
	plain := build(false)
	secure := build(true)

	queries := []*plan.Query{
		plan.NewQuery("lineitem").
			WithFilter(workload.SelectivityFilter(cfg, 0.1)).
			WithProjection(workload.LOrderKey, workload.LExtendedPrice),
		plan.NewQuery("lineitem").WithGroupBy(workload.PricingSummary()),
		plan.NewQuery("lineitem").WithCount(),
	}
	for _, q := range queries {
		pr, err := plain.Execute(context.Background(), q)
		if err != nil {
			t.Fatalf("%s plain: %v", q, err)
		}
		sr, err := secure.Execute(context.Background(), q)
		if err != nil {
			t.Fatalf("%s secure: %v", q, err)
		}
		assertSameResults(t, pr, sr)

		// The NICs must have done real crypto work.
		if sr.Stats.DeviceBusy[fabric.DevStorageNIC] <= pr.Stats.DeviceBusy[fabric.DevStorageNIC] {
			t.Errorf("%s: storage NIC not charged for encryption", q)
		}
	}
}

func TestSecureWireCarriesEncodedBytes(t *testing.T) {
	cfg := workload.DefaultLineitemConfig(15000)
	data := workload.GenLineitem(cfg)
	e := NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
	e.SecureWire = true
	if err := e.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
		t.Fatal(err)
	}
	if err := e.Load("lineitem", data); err != nil {
		t.Fatal(err)
	}
	plainE := NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
	if err := plainE.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
		t.Fatal(err)
	}
	if err := plainE.Load("lineitem", data); err != nil {
		t.Fatal(err)
	}
	q := plan.NewQuery("lineitem") // full scan: lots of wire traffic
	sr, err := e.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := plainE.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Rows() != pr.Rows() {
		t.Fatalf("row counts differ: %d vs %d", sr.Rows(), pr.Rows())
	}
	// Sealed batches carry the encoded representation: the network link
	// must move fewer bytes than the plain decoded stream.
	net := "storage.nic--switch"
	if sr.Stats.LinkBytes[net] >= pr.Stats.LinkBytes[net] {
		t.Errorf("sealed wire %v >= plain wire %v", sr.Stats.LinkBytes[net], pr.Stats.LinkBytes[net])
	}
}

func TestSecureWireNeedsSmartNICs(t *testing.T) {
	e := NewDataFlowEngine(fabric.NewCluster(fabric.LegacyClusterConfig()))
	e.SecureWire = true
	if err := e.CreateTable("lineitem", workload.LineitemSchema()); err != nil {
		t.Fatal(err)
	}
	if err := e.Load("lineitem", workload.GenLineitem(workload.DefaultLineitemConfig(1000))); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(context.Background(), plan.NewQuery("lineitem").WithCount()); err == nil {
		t.Error("SecureWire on dumb NICs succeeded")
	}
}
