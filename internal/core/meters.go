package core

import (
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/sim"
	"repro/internal/storage"
)

// meterKey identifies one device or link meter.
type meterKey struct {
	link bool
	name string
}

// meterSnap captures one meter plus its per-lane busy split, so a later
// delta can divide replicated-lane work across a device's units
// (fabric.EffectiveBusy) while keeping the aggregate totals exact.
type meterSnap struct {
	m     sim.Snapshot
	lanes []sim.VTime
}

// snapshotClusterMeters captures every device and link meter so a later
// delta isolates one execution's work from the cluster's running totals.
func snapshotClusterMeters(c *fabric.Cluster) map[meterKey]meterSnap {
	out := make(map[meterKey]meterSnap)
	for _, d := range c.Devices() {
		out[meterKey{false, d.Name}] = meterSnap{m: d.Meter.Snapshot(), lanes: d.LaneBusy()}
	}
	for _, l := range c.Links() {
		out[meterKey{true, l.Name}] = meterSnap{m: l.Meter.Snapshot(), lanes: l.LaneBusy()}
	}
	return out
}

func (e *DataFlowEngine) snapshotMeters() map[meterKey]meterSnap {
	return snapshotClusterMeters(e.Cluster)
}

func (e *VolcanoEngine) snapshotMeters() map[meterKey]meterSnap {
	return snapshotClusterMeters(e.Cluster)
}

// deviceDelta returns a device's meter delta since before, plus its
// effective busy time: work charged to positional lanes is divided
// across the device's replicated units, everything else stays serial.
func deviceDelta(d *fabric.Device, before map[meterKey]meterSnap) (sim.Snapshot, sim.VTime) {
	prev := before[meterKey{false, d.Name}]
	delta := d.Meter.Snapshot().Sub(prev.m)
	return delta, fabric.EffectiveBusy(delta.Busy, prev.lanes, d.LaneBusy())
}

// linkDelta is deviceDelta for links; only multi-queue links (flash
// channels, DMA queues) ever split, network links stay serial.
func linkDelta(l *fabric.Link, before map[meterKey]meterSnap) (sim.Snapshot, sim.VTime) {
	prev := before[meterKey{true, l.Name}]
	delta := l.Meter.Snapshot().Sub(prev.m)
	return delta, fabric.EffectiveBusy(delta.Busy, prev.lanes, l.LaneBusy())
}

// resilienceSnap captures the monotonic gray-failure counters a policy
// and its object store accumulate, so a later fold isolates one query's
// hedges, breaker trips and budget denials from the running totals.
type resilienceSnap struct {
	hedges    storage.HedgeStats
	trips     int64
	exhausted int64
}

// snapshotResilience captures the current counters; nil policy is fine
// (the snapshot then only carries the store's hedge totals, which stay
// flat with hedging disabled).
func snapshotResilience(store *storage.ObjectStore, pol *resilience.Policy) resilienceSnap {
	snap := resilienceSnap{hedges: store.Hedges()}
	if pol != nil {
		snap.trips = pol.Breakers.Trips()
		snap.exhausted = pol.Budget.Exhausted()
	}
	return snap
}

// foldResilience sets (not adds — callers may re-fold over a wider
// window) the stats' gray-failure counters to the delta since before.
func foldResilience(st *ExecStats, store *storage.ObjectStore, pol *resilience.Policy, before resilienceSnap) {
	h := store.Hedges().Sub(before.hedges)
	st.HedgedReads = h.Hedged
	st.HedgeWins = h.Wins
	st.HedgeBytes = h.Bytes
	if pol != nil {
		st.BreakerTrips = pol.Breakers.Trips() - before.trips
		st.RetryBudgetExhausted = pol.Budget.Exhausted() - before.exhausted
	}
}

// sampleHealthSeries publishes the policy's per-key latency EWMAs and
// deviations as trace metric series, one point at the trace makespan —
// the operator-facing view of which device or stage is graying out.
// Keys iterate sorted, so traced runs render deterministically.
func sampleHealthSeries(tr *obs.Trace, pol *resilience.Policy) {
	if !tr.Enabled() || pol == nil || pol.Health == nil {
		return
	}
	mk := tr.Makespan()
	for _, key := range pol.Health.Keys() {
		lat, ok := pol.Health.Latency(key)
		if !ok {
			continue
		}
		dev, _ := pol.Health.Deviation(key)
		tr.Sample("health."+key+".ewma", "ns", mk, float64(lat))
		tr.Sample("health."+key+".dev", "ns", mk, float64(dev))
	}
}

// sampleMeterSeries snapshots every cluster meter's query-lifecycle
// delta into named trace series: one point at virtual time 0 and one at
// the trace makespan. Deterministic: devices and links iterate in the
// cluster's fixed order. Meters that did no work are skipped.
func sampleMeterSeries(c *fabric.Cluster, tr *obs.Trace, before map[meterKey]meterSnap) {
	if !tr.Enabled() {
		return
	}
	mk := tr.Makespan()
	for _, d := range c.Devices() {
		delta := d.Meter.Snapshot().Sub(before[meterKey{false, d.Name}].m)
		if delta.Bytes == 0 && delta.Busy == 0 {
			continue
		}
		tr.Sample("meter."+d.Name+".bytes", "bytes", 0, 0)
		tr.Sample("meter."+d.Name+".bytes", "bytes", mk, float64(delta.Bytes))
		tr.Sample("meter."+d.Name+".busy", "vns", 0, 0)
		tr.Sample("meter."+d.Name+".busy", "vns", mk, float64(delta.Busy))
	}
	for _, l := range c.Links() {
		delta := l.Meter.Snapshot().Sub(before[meterKey{true, l.Name}].m)
		if delta.Bytes == 0 && delta.Messages == 0 {
			continue
		}
		tr.Sample("meter."+l.Name+".bytes", "bytes", 0, 0)
		tr.Sample("meter."+l.Name+".bytes", "bytes", mk, float64(delta.Bytes))
		tr.Sample("meter."+l.Name+".messages", "count", 0, 0)
		tr.Sample("meter."+l.Name+".messages", "count", mk, float64(delta.Messages))
	}
}
