package storage

import (
	"context"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/columnar"
	"repro/internal/expr"
	"repro/internal/fabric"
	"repro/internal/obs"
	"repro/internal/sim"
)

func lineSchema() *columnar.Schema {
	return columnar.NewSchema(
		columnar.Field{Name: "orderkey", Type: columnar.Int64},
		columnar.Field{Name: "qty", Type: columnar.Int64},
		columnar.Field{Name: "price", Type: columnar.Float64},
		columnar.Field{Name: "comment", Type: columnar.String},
	)
}

func lineBatch(n int) *columnar.Batch {
	b := columnar.NewBatch(lineSchema(), n)
	words := []string{"quick", "brown", "fox", "lazy", "dog"}
	for i := 0; i < n; i++ {
		b.AppendRow(
			columnar.IntValue(int64(i)),
			columnar.IntValue(int64(i%50)),
			columnar.FloatValue(float64(i)*0.25),
			columnar.StringValue(words[i%len(words)]),
		)
	}
	return b
}

func TestSegmentRoundTrip(t *testing.T) {
	b := lineBatch(1000)
	seg := BuildSegment(7, b)
	if seg.NumRows != 1000 || seg.ID != 7 {
		t.Fatalf("segment header %d/%d", seg.ID, seg.NumRows)
	}
	back, err := seg.Decode()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.NumRows(); i += 97 {
		for c := 0; c < b.NumCols(); c++ {
			if !back.Col(c).Value(i).Equal(b.Col(c).Value(i)) {
				t.Fatalf("cell (%d,%d) differs", i, c)
			}
		}
	}
}

func TestSegmentDecodeColumns(t *testing.T) {
	seg := BuildSegment(0, lineBatch(100))
	b, err := seg.DecodeColumns([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if b.NumCols() != 2 || b.Schema().Fields[0].Name != "price" {
		t.Fatalf("projected decode schema = %s", b.Schema())
	}
	if _, err := seg.DecodeColumns([]int{9}); err == nil {
		t.Error("out-of-range column decoded without error")
	}
}

func TestSegmentMarshalRoundTrip(t *testing.T) {
	seg := BuildSegment(3, lineBatch(500))
	back, err := UnmarshalSegment(seg.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != 3 || back.NumRows != 500 || !back.Schema.Equal(seg.Schema) {
		t.Fatalf("header mismatch: %+v", back)
	}
	dec, err := back.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if dec.NumRows() != 500 {
		t.Fatalf("decoded rows = %d", dec.NumRows())
	}
}

func TestSegmentMarshalRejectsTruncation(t *testing.T) {
	blob := BuildSegment(0, lineBatch(64)).Marshal()
	for i := 0; i < len(blob)-1; i += 13 {
		if _, err := UnmarshalSegment(blob[:i]); err == nil {
			t.Fatalf("truncated segment at %d parsed", i)
		}
	}
}

func TestSegmentPruneInt(t *testing.T) {
	seg := BuildSegment(0, lineBatch(100)) // orderkey 0..99
	if !seg.PruneInt(0, 200, 300) {
		t.Error("range [200,300] not pruned for keys 0..99")
	}
	if seg.PruneInt(0, 50, 60) {
		t.Error("range [50,60] wrongly pruned")
	}
	if seg.PruneInt(99, 0, 1) {
		t.Error("out-of-range column pruned")
	}
}

func TestSegmentSizes(t *testing.T) {
	seg := BuildSegment(0, lineBatch(10000))
	if seg.EncodedSize() <= 0 || seg.DecodedSize() <= 0 {
		t.Fatal("non-positive sizes")
	}
	// qty has 50 distinct small values; encoded must beat 8B/value.
	if seg.EncodedSize() >= seg.DecodedSize() {
		t.Errorf("encoded %v >= decoded %v", seg.EncodedSize(), seg.DecodedSize())
	}
	one := seg.ColumnDecodedSize([]int{0})
	two := seg.ColumnDecodedSize([]int{0, 1})
	if two <= one {
		t.Error("ColumnDecodedSize not additive")
	}
}

func TestObjectStoreBasics(t *testing.T) {
	o := NewObjectStore()
	o.Put("t/a", []byte("hello"))
	o.Put("t/b", []byte("world!"))
	o.Put("u/c", []byte("x"))
	data, err := o.Get(context.Background(), "t/a")
	if err != nil || string(data) != "hello" {
		t.Fatalf("Get = %q, %v", data, err)
	}
	if _, err := o.Get(context.Background(), "missing"); err == nil {
		t.Error("Get(missing) succeeded")
	}
	if got := o.List("t/"); len(got) != 2 || got[0] != "t/a" {
		t.Errorf("List = %v", got)
	}
	if o.Size("t/b") != 6 || o.Size("nope") != -1 {
		t.Error("Size wrong")
	}
	if o.TotalBytes() != 12 || o.NumObjects() != 3 {
		t.Errorf("TotalBytes=%d NumObjects=%d", o.TotalBytes(), o.NumObjects())
	}
	o.Delete("t/a")
	if _, err := o.Get(context.Background(), "t/a"); err == nil {
		t.Error("deleted object still readable")
	}
	// Put copies its input.
	buf := []byte("mutate")
	o.Put("m", buf)
	buf[0] = 'X'
	got, _ := o.Get(context.Background(), "m")
	if string(got) != "mutate" {
		t.Error("Put did not copy data")
	}
}

// newTestServer builds a smart storage server over a tiny fabric.
func newTestServer(t *testing.T, smart bool) *Server {
	t.Helper()
	top := fabric.NewTopology("test")
	media := top.AddDevice(fabric.NewStorageMedia("media"))
	var proc *fabric.Device
	if smart {
		proc = fabric.NewSmartSSD("proc")
	} else {
		proc = &fabric.Device{Name: "proc", Kind: fabric.KindSmartSSD,
			Caps: fabric.Capability{fabric.OpScan: fabric.NVMeBandwidth, fabric.OpDecompress: 5e9}}
	}
	top.AddDevice(proc)
	link := top.Connect("media", "proc", fabric.LinkNVMe, fabric.NVMeBandwidth, fabric.NVMeLatency)
	srv := NewServer(NewObjectStore(), media, proc, link)
	srv.SegmentRows = 1000
	return srv
}

func loadTable(t *testing.T, srv *Server, rows int) {
	t.Helper()
	if _, err := srv.CreateTable("lineitem", lineSchema()); err != nil {
		t.Fatal(err)
	}
	if err := srv.Append("lineitem", lineBatch(rows)); err != nil {
		t.Fatal(err)
	}
}

func collect(t *testing.T) (func(*columnar.Batch) error, *[]*columnar.Batch) {
	t.Helper()
	var got []*columnar.Batch
	return func(b *columnar.Batch) error {
		got = append(got, b)
		return nil
	}, &got
}

func totalRows(batches []*columnar.Batch) int {
	n := 0
	for _, b := range batches {
		n += b.NumRows()
	}
	return n
}

func TestServerCreateAppendScan(t *testing.T) {
	srv := newTestServer(t, true)
	loadTable(t, srv, 5000)
	meta, err := srv.Table("lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if meta.NumRows != 5000 || len(meta.SegmentKeys) != 5 {
		t.Fatalf("meta = %+v", meta)
	}
	emit, got := collect(t)
	stats, err := srv.Scan(context.Background(), "lineitem", ScanSpec{}, emit)
	if err != nil {
		t.Fatal(err)
	}
	if totalRows(*got) != 5000 {
		t.Errorf("scanned %d rows, want 5000", totalRows(*got))
	}
	if stats.SegmentsTotal != 5 || stats.SegmentsPruned != 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.ShippedRows != 5000 || stats.ShippedBytes <= 0 || stats.MediaBytes <= 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestScanTraceSpans(t *testing.T) {
	srv := newTestServer(t, true)
	loadTable(t, srv, 5000)
	tr := obs.New()
	clock := obs.NewVClock()
	emit, _ := collect(t)
	spec := ScanSpec{
		Filter:   expr.NewCmp(1, expr.Lt, columnar.IntValue(5)),
		Pushdown: true,
		Trace:    tr,
		Clock:    clock,
	}
	if _, err := srv.Scan(context.Background(), "lineitem", spec, emit); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, s := range tr.Spans() {
		counts[s.Name]++
	}
	// 5 segments, none pruned: each reads, crosses the media link,
	// decodes, and filters.
	for _, name := range []string{"read", "xfer", "decode", "filter@storage"} {
		if counts[name] != 5 {
			t.Errorf("span %q count = %d, want 5 (all: %v)", name, counts[name], counts)
		}
	}
	if clock.Now() <= 0 {
		t.Error("scan did not advance the virtual clock")
	}
	if mk := tr.Makespan(); mk != clock.Now() {
		t.Errorf("trace makespan %v != clock %v: scan spans not contiguous", mk, clock.Now())
	}
}

func TestServerErrors(t *testing.T) {
	srv := newTestServer(t, true)
	if _, err := srv.Table("none"); err == nil {
		t.Error("unknown table lookup succeeded")
	}
	loadTable(t, srv, 10)
	if _, err := srv.CreateTable("lineitem", lineSchema()); err == nil {
		t.Error("duplicate CreateTable succeeded")
	}
	wrong := columnar.NewBatch(columnar.NewSchema(columnar.Field{Name: "z", Type: columnar.Bool}), 1)
	if err := srv.Append("lineitem", wrong); err == nil {
		t.Error("schema-mismatched Append succeeded")
	}
	emit, _ := collect(t)
	if _, err := srv.Scan(context.Background(), "nope", ScanSpec{}, emit); err == nil {
		t.Error("scan of unknown table succeeded")
	}
}

func TestScanPushdownFilterAndProjection(t *testing.T) {
	srv := newTestServer(t, true)
	loadTable(t, srv, 5000)
	emit, got := collect(t)
	spec := ScanSpec{
		Projection: []int{2},                                      // price only
		Filter:     expr.NewCmp(1, expr.Lt, columnar.IntValue(5)), // qty < 5
		Pushdown:   true,
	}
	stats, err := srv.Scan(context.Background(), "lineitem", spec, emit)
	if err != nil {
		t.Fatal(err)
	}
	// qty cycles 0..49, so 10% of rows survive.
	if totalRows(*got) != 500 {
		t.Errorf("filtered rows = %d, want 500", totalRows(*got))
	}
	for _, b := range *got {
		if b.NumCols() != 1 || b.Schema().Fields[0].Name != "price" {
			t.Fatalf("projected schema = %s", b.Schema())
		}
	}
	// Pushdown must ship far less than it read.
	if stats.ShippedBytes*2 >= stats.MediaBytes*8 {
		// 500 rows x 8B vs ~5000 rows x 2 cols encoded; loose sanity check.
		t.Logf("shipped %v media %v", stats.ShippedBytes, stats.MediaBytes)
	}
	full, _ := collect(t)
	fullStats, err := srv.Scan(context.Background(), "lineitem", ScanSpec{}, func(b *columnar.Batch) error { return (*(&full))(b) })
	_ = fullStats
	if err != nil {
		t.Fatal(err)
	}
	if stats.ShippedBytes >= fullStats.ShippedBytes {
		t.Errorf("pushdown shipped %v >= full scan %v", stats.ShippedBytes, fullStats.ShippedBytes)
	}
}

func TestScanWithoutPushdownShipsFilterColumns(t *testing.T) {
	srv := newTestServer(t, false)
	loadTable(t, srv, 2000)
	emit, got := collect(t)
	spec := ScanSpec{
		Projection: []int{2},
		Filter:     expr.NewCmp(1, expr.Lt, columnar.IntValue(5)),
		Pushdown:   false,
	}
	stats, err := srv.Scan(context.Background(), "lineitem", spec, emit)
	if err != nil {
		t.Fatal(err)
	}
	// No filtering happened: all rows ship, including the filter column.
	if totalRows(*got) != 2000 {
		t.Errorf("rows = %d, want 2000 (no pushdown)", totalRows(*got))
	}
	b := (*got)[0]
	if b.NumCols() != 2 {
		t.Errorf("shipped cols = %d, want 2 (price + qty)", b.NumCols())
	}
	if stats.ShippedRows != 2000 {
		t.Errorf("stats.ShippedRows = %d", stats.ShippedRows)
	}
}

func TestScanPushdownOnDumbProcessorFails(t *testing.T) {
	srv := newTestServer(t, false)
	loadTable(t, srv, 100)
	emit, _ := collect(t)
	_, err := srv.Scan(context.Background(), "lineitem", ScanSpec{
		Filter:   expr.NewCmp(1, expr.Lt, columnar.IntValue(5)),
		Pushdown: true,
	}, emit)
	if err == nil || !strings.Contains(err.Error(), "cannot execute") {
		t.Fatalf("err = %v, want capability error", err)
	}
}

func TestScanZoneMapPruning(t *testing.T) {
	srv := newTestServer(t, true)
	loadTable(t, srv, 10000) // 10 segments, orderkey 0..9999
	emit, got := collect(t)
	spec := ScanSpec{
		Filter:   expr.NewBetween(0, 2500, 2599), // inside segment 2 only
		Pushdown: true,
	}
	stats, err := srv.Scan(context.Background(), "lineitem", spec, emit)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SegmentsPruned != 9 {
		t.Errorf("pruned %d segments, want 9", stats.SegmentsPruned)
	}
	if totalRows(*got) != 100 {
		t.Errorf("rows = %d, want 100", totalRows(*got))
	}
	// Pruning disabled reads everything.
	emit2, got2 := collect(t)
	spec.DisablePruning = true
	stats2, err := srv.Scan(context.Background(), "lineitem", spec, emit2)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.SegmentsPruned != 0 {
		t.Errorf("pruning disabled but pruned %d", stats2.SegmentsPruned)
	}
	if totalRows(*got2) != 100 {
		t.Errorf("rows = %d, want 100 either way", totalRows(*got2))
	}
	if stats2.MediaBytes <= stats.MediaBytes {
		t.Error("pruning did not reduce media bytes")
	}
}

func TestScanPreAggAtStorage(t *testing.T) {
	srv := newTestServer(t, true)
	loadTable(t, srv, 5000)
	spec := ScanSpec{
		PreAgg: &expr.GroupBy{
			GroupCols: []int{1}, // qty (50 groups)
			Aggs:      []expr.AggSpec{{Func: expr.Count}, {Func: expr.Sum, Col: 0}},
		},
		Pushdown: true,
	}
	emit, got := collect(t)
	stats, err := srv.Scan(context.Background(), "lineitem", spec, emit)
	if err != nil {
		t.Fatal(err)
	}
	// Merge partials and verify counts: each qty value appears 100x.
	final := expr.NewFinalAggregator(*spec.PreAgg, lineSchema())
	// Rebase: partials are keyed over decoded schema; final agg expects
	// partials matching its own spec's shape, which they do (group cols
	// then states).
	finalSpec := expr.GroupBy{GroupCols: []int{0}, Aggs: spec.PreAgg.Aggs}
	_ = finalSpec
	for _, b := range *got {
		final.AddPartial(b)
	}
	res := final.Result()
	if res.NumRows() != 50 {
		t.Fatalf("groups = %d, want 50", res.NumRows())
	}
	for i := 0; i < res.NumRows(); i++ {
		if cnt := res.Col(1).Int64s()[i]; cnt != 100 {
			t.Errorf("group %d count = %d, want 100", i, cnt)
		}
	}
	if stats.ShippedRows >= 5000 {
		t.Errorf("pre-agg shipped %d rows, want far fewer than 5000", stats.ShippedRows)
	}
}

func TestScanChargesDevices(t *testing.T) {
	srv := newTestServer(t, true)
	loadTable(t, srv, 3000)
	emit, _ := collect(t)
	spec := ScanSpec{Filter: expr.NewCmp(1, expr.Lt, columnar.IntValue(10)), Pushdown: true}
	if _, err := srv.Scan(context.Background(), "lineitem", spec, emit); err != nil {
		t.Fatal(err)
	}
	if srv.Proc().Meter.Busy() <= 0 {
		t.Error("processor not charged")
	}
	if srv.Proc().Meter.Bytes() <= 0 {
		t.Error("processor bytes not charged")
	}
}

func TestDropTable(t *testing.T) {
	srv := newTestServer(t, true)
	loadTable(t, srv, 100)
	if srv.Store().NumObjects() == 0 {
		t.Fatal("no objects after load")
	}
	srv.DropTable("lineitem")
	if srv.Store().NumObjects() != 0 {
		t.Error("DropTable left objects")
	}
	if _, err := srv.Table("lineitem"); err == nil {
		t.Error("dropped table still visible")
	}
	if got := srv.Tables(); len(got) != 0 {
		t.Errorf("Tables = %v", got)
	}
}

// Property: segment round trip preserves arbitrary int64 columns.
func TestSegmentRoundTripProperty(t *testing.T) {
	schema := columnar.NewSchema(columnar.Field{Name: "v", Type: columnar.Int64})
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		b := columnar.BatchOf(schema, columnar.FromInt64s(vals))
		seg, err := UnmarshalSegment(BuildSegment(0, b).Marshal())
		if err != nil {
			return false
		}
		back, err := seg.Decode()
		if err != nil || back.NumRows() != len(vals) {
			return false
		}
		for i, v := range vals {
			if back.Col(0).Int64s()[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestScanStatsShippedAccounting(t *testing.T) {
	srv := newTestServer(t, true)
	loadTable(t, srv, 1000)
	var sumBytes sim.Bytes
	stats, err := srv.Scan(context.Background(), "lineitem", ScanSpec{}, func(b *columnar.Batch) error {
		sumBytes += sim.Bytes(b.ByteSize())
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ShippedBytes != sumBytes {
		t.Errorf("ShippedBytes %v != emitted %v", stats.ShippedBytes, sumBytes)
	}
}
