// Command dfshell is an interactive SQL shell over the data-flow engine:
// it loads the generated lineitem/orders tables into a Figure 6 cluster
// and executes SELECT statements from stdin, printing results, the
// chosen placement, and the movement stats after each query.
//
//	go run ./cmd/dfshell [-rows N]
//
// Meta commands: \tables, \explain <sql>, \stats <table>, \topo, \quit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sqlparse"
	"repro/internal/workload"
)

func main() {
	rows := flag.Int("rows", 50000, "lineitem rows to generate")
	flag.Parse()

	cluster := fabric.NewCluster(fabric.DefaultClusterConfig())
	eng := core.NewDataFlowEngine(cluster)
	lcfg := workload.DefaultLineitemConfig(*rows)
	lcfg.Orders = int64(*rows / 4)
	must(eng.CreateTable("lineitem", workload.LineitemSchema()))
	must(eng.Load("lineitem", workload.GenLineitem(lcfg)))
	must(eng.CreateTable("orders", workload.OrdersSchema()))
	must(eng.Load("orders", workload.GenOrders(*rows/4, 7)))

	fmt.Printf("dfshell — data-flow engine over %s\n", cluster.Name)
	fmt.Printf("tables: lineitem (%d rows), orders (%d rows)\n", *rows, *rows/4)
	fmt.Println(`type SQL, or \tables \explain <sql> \stats <table> \topo \quit`)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("df> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return
		case line == `\tables`:
			for _, name := range eng.Storage.Tables() {
				schema, err := eng.TableSchema(name)
				if err != nil {
					continue
				}
				fmt.Printf("  %s %s\n", name, schema)
			}
		case line == `\topo`:
			fmt.Print(cluster.String())
		case strings.HasPrefix(line, `\stats `):
			name := strings.TrimSpace(strings.TrimPrefix(line, `\stats `))
			st, err := eng.Stats(name)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("  rows=%d bytes=%s\n", st.Rows, st.TotalBytes())
		case strings.HasPrefix(line, `\explain `):
			sql := strings.TrimPrefix(line, `\explain `)
			q, err := sqlparse.Parse(sql, eng)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			variants, err := eng.Plan(q, 0)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			for _, v := range variants {
				fmt.Print(v.Explain())
			}
		case strings.HasPrefix(line, `\`):
			fmt.Println("unknown meta command:", line)
		default:
			q, err := sqlparse.Parse(line, eng)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			res, err := eng.Execute(q)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(res.Format(20))
			fmt.Printf("-- %d rows via %q: moved %s, cpu %s, simtime %s\n",
				res.Rows(), res.Stats.Variant, res.Stats.MovedBytes,
				res.Stats.CPUBytes, res.Stats.SimTime)
		}
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
