package core

import (
	"context"
	"fmt"

	"repro/internal/bufferpool"
	"repro/internal/columnar"
	"repro/internal/exec"
	"repro/internal/fabric"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/storage"
)

// JoinQuery is an equi-join between two stored tables. The build side
// should be the smaller table.
type JoinQuery struct {
	Probe    string // probe-side (streaming) table
	Build    string // build-side (hash table) table
	ProbeKey int    // key column in the probe schema
	BuildKey int    // key column in the build schema
	// Nodes is how many compute nodes participate; 0 means all.
	Nodes int
}

// ExecuteJoin runs the Figure 4 plan: both sides are scanned at storage
// and scattered by key — on the storage NIC when it is smart, otherwise
// on compute node 0's CPU — to per-node hash joins; results gather on
// node 0.
func (e *DataFlowEngine) ExecuteJoin(ctx context.Context, jq JoinQuery) (*Result, error) {
	ctx = ctxOrBackground(ctx)
	nodes := jq.Nodes
	if nodes <= 0 {
		nodes = e.Cluster.Cfg.ComputeNodes
	}
	if nodes > e.Cluster.Cfg.ComputeNodes {
		return nil, fmt.Errorf("core: join wants %d nodes, cluster has %d", nodes, e.Cluster.Cfg.ComputeNodes)
	}
	before := e.snapshotMeters()

	build, _, err := e.materialize(ctx, jq.Build)
	if err != nil {
		return nil, lifecycleError(err)
	}
	probe, _, err := e.materialize(ctx, jq.Probe)
	if err != nil {
		return nil, lifecycleError(err)
	}
	if err := ctx.Err(); err != nil {
		return nil, lifecycleError(err)
	}

	// Scatter point: the storage NIC if it can partition, else the
	// first compute node's CPU (the legacy exchange).
	scatter := e.Cluster.StorageNIC()
	if !scatter.Can(fabric.OpPartition) {
		scatter = e.Cluster.ComputeCPU(0)
	}

	cfg := netsim.DistJoinConfig{
		BuildKey:      jq.BuildKey,
		ProbeKey:      jq.ProbeKey,
		ScatterDevice: scatter,
		ScatterOnNIC:  scatter.Kind == fabric.KindSmartNIC,
		BatchRows:     storage.DefaultBatchRows,
		Workers:       e.Workers,
	}
	for i := 0; i < nodes; i++ {
		cfg.Nodes = append(cfg.Nodes, netsim.JoinNode{
			Name: fabric.ComputeDev(i, "cpu"),
			CPU:  e.Cluster.ComputeCPU(i),
		})
		path, err := e.Cluster.Path(scatter.Name, fabric.ComputeDev(i, "cpu"))
		if err != nil {
			return nil, err
		}
		cfg.Paths = append(cfg.Paths, path)
	}

	// Per-node results gather back to node 0.
	perNode := make([][]*columnar.Batch, nodes)
	_, err = netsim.DistributedJoin(cfg, build, probe, func(node int, b *columnar.Batch) error {
		perNode[node] = append(perNode[node], b)
		return nil
	})
	if err != nil {
		return nil, err
	}
	gatherPaths := make([][]*fabric.Link, nodes)
	for i := 1; i < nodes; i++ { // node 0's results are already local
		p, err := e.Cluster.Path(fabric.ComputeDev(i, "cpu"), fabric.ComputeDev(0, "cpu"))
		if err != nil {
			return nil, err
		}
		gatherPaths[i] = p
	}
	batches := netsim.Gather(perNode, gatherPaths)

	res := &Result{Batches: batches}
	res.Stats = e.joinStats(before, res)
	return res, nil
}

// materialize scans a full table into batches, charging the storage
// side (media read + decode) but not shipping anywhere yet — the
// exchange does the shipping.
func (e *DataFlowEngine) materialize(ctx context.Context, table string) ([]*columnar.Batch, storage.ScanStats, error) {
	var out []*columnar.Batch
	st, err := e.Storage.Scan(ctx, table, storage.ScanSpec{Workers: e.Workers}, func(b *columnar.Batch) error {
		out = append(out, b)
		return nil
	})
	if err != nil {
		return nil, st, err
	}
	if len(out) == 0 {
		return nil, st, fmt.Errorf("core: table %q is empty", table)
	}
	return out, st, nil
}

func (e *DataFlowEngine) joinStats(before map[meterKey]meterSnap, res *Result) ExecStats {
	st := ExecStats{
		Engine:     "dataflow",
		Variant:    "distributed-join",
		LinkBytes:  make(map[string]sim.Bytes),
		DeviceBusy: make(map[string]sim.VTime),
		ResultRows: res.Rows(),
	}
	var maxBusy sim.VTime
	for _, d := range e.Cluster.Devices() {
		delta, busy := deviceDelta(d, before)
		if busy > 0 {
			st.DeviceBusy[d.Name] = busy
			if busy > maxBusy {
				maxBusy = busy
			}
		}
		if d.Kind == fabric.KindCPU {
			st.CPUBytes += delta.Bytes
			st.CPUBusy += busy
		}
	}
	var latency sim.VTime
	for _, l := range e.Cluster.Links() {
		delta, busy := linkDelta(l, before)
		if delta.Bytes > 0 {
			st.LinkBytes[l.Name] = delta.Bytes
			st.MovedBytes += delta.Bytes
			if busy > maxBusy {
				maxBusy = busy
			}
			latency += l.Latency
		}
	}
	st.SimTime = maxBusy + latency
	return st
}

// ExecuteJoin on the Volcano baseline: both sides are pulled through the
// buffer pool to compute node 0 and joined there by the blocking
// iterator — no exchange, no other nodes, all bytes to one CPU.
func (e *VolcanoEngine) ExecuteJoin(ctx context.Context, jq JoinQuery) (*Result, error) {
	ctx = ctxOrBackground(ctx)
	before := e.snapshotMeters()
	buildIt, err := e.tableIterator(ctx, jq.Build)
	if err != nil {
		return nil, err
	}
	probeIt, err := e.tableIterator(ctx, jq.Probe)
	if err != nil {
		return nil, err
	}
	it := &HashJoinChargeIter{
		Inner: &exec.HashJoinIter{
			Build: buildIt, Probe: probeIt,
			BuildKey: jq.BuildKey, ProbeKey: jq.ProbeKey,
			Workers: e.Workers,
		},
		CPU: e.cpu,
	}
	batches, err := exec.Drain(it)
	if err != nil {
		return nil, lifecycleError(err)
	}
	res := &Result{Batches: batches}
	res.Stats = e.buildStats(before, res)
	res.Stats.Variant = "volcano-join"
	return res, nil
}

// tableIterator builds the baseline's buffer-pool-backed scan.
func (e *VolcanoEngine) tableIterator(ctx context.Context, table string) (exec.Iterator, error) {
	meta, err := e.Storage.Table(table)
	if err != nil {
		return nil, err
	}
	segIdx := 0
	dramToCPU := e.Cluster.LinkBetween(e.dram, e.cpu.Name)
	return exec.NewFuncScan(meta.Schema, func() (*columnar.Batch, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if segIdx >= len(meta.SegmentKeys) {
			return nil, nil
		}
		key := meta.SegmentKeys[segIdx]
		segIdx++
		page, err := e.Pool.Get(ctx, bufferpool.PageID(key))
		if err != nil {
			return nil, err
		}
		defer e.Pool.Unpin(bufferpool.PageID(key))
		seg, err := storage.UnmarshalSegment(page.Data)
		if err != nil {
			return nil, err
		}
		e.cpu.Charge(fabric.OpDecompress, sim.Bytes(len(page.Data)))
		batch, err := seg.Decode()
		if err != nil {
			return nil, err
		}
		if dramToCPU != nil {
			dramToCPU.Transfer(sim.Bytes(batch.ByteSize()))
		}
		return batch, nil
	}), nil
}

// HashJoinChargeIter charges the CPU for join work per probed batch.
type HashJoinChargeIter struct {
	Inner exec.Iterator
	CPU   *fabric.Device
}

// Schema implements exec.Iterator.
func (it *HashJoinChargeIter) Schema() *columnar.Schema { return it.Inner.Schema() }

// Next implements exec.Iterator.
func (it *HashJoinChargeIter) Next() (*columnar.Batch, error) {
	b, err := it.Inner.Next()
	if err != nil || b == nil {
		return b, err
	}
	it.CPU.Charge(fabric.OpJoin, sim.Bytes(b.ByteSize()))
	return b, nil
}
