package sqlparse

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/columnar"
	"repro/internal/expr"
	"repro/internal/plan"
)

type fakeCatalog struct{}

func (fakeCatalog) TableSchema(name string) (*columnar.Schema, error) {
	if name != "lineitem" {
		return nil, fmt.Errorf("unknown table %q", name)
	}
	return columnar.NewSchema(
		columnar.Field{Name: "orderkey", Type: columnar.Int64},
		columnar.Field{Name: "qty", Type: columnar.Int64},
		columnar.Field{Name: "price", Type: columnar.Float64},
		columnar.Field{Name: "flag", Type: columnar.String},
		columnar.Field{Name: "returned", Type: columnar.Bool},
	), nil
}

func parse(t *testing.T, sql string) *plan.Query {
	t.Helper()
	q, err := Parse(sql, fakeCatalog{})
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return q
}

func TestParseStarQuery(t *testing.T) {
	q := parse(t, "SELECT * FROM lineitem")
	if q.Table != "lineitem" || q.Projection != nil || q.Filter != nil || q.GroupBy != nil {
		t.Errorf("query = %+v", q)
	}
}

func TestParseProjection(t *testing.T) {
	q := parse(t, "select price, orderkey from lineitem")
	if len(q.Projection) != 2 || q.Projection[0] != 2 || q.Projection[1] != 0 {
		t.Errorf("projection = %v", q.Projection)
	}
}

func TestParseWhereComparisons(t *testing.T) {
	cases := []struct {
		sql  string
		want string // expected predicate String()
	}{
		{"SELECT * FROM lineitem WHERE qty < 5", "col1 < 5"},
		{"SELECT * FROM lineitem WHERE qty >= 10", "col1 >= 10"},
		{"SELECT * FROM lineitem WHERE qty != 3", "col1 <> 3"},
		{"SELECT * FROM lineitem WHERE qty <> 3", "col1 <> 3"},
		{"SELECT * FROM lineitem WHERE price > 9.5", "col2 > 9.5"},
		{"SELECT * FROM lineitem WHERE flag = 'A'", "col3 = A"},
		{"SELECT * FROM lineitem WHERE returned = TRUE", "col4 = true"},
		{"SELECT * FROM lineitem WHERE qty BETWEEN 3 AND 7", "col1 BETWEEN 3 AND 7"},
		{"SELECT * FROM lineitem WHERE flag LIKE '%ab%'", "col3 LIKE '%ab%'"},
		{"SELECT * FROM lineitem WHERE qty = -5", "col1 = -5"},
	}
	for _, tc := range cases {
		q := parse(t, tc.sql)
		if got := q.Filter.String(); got != tc.want {
			t.Errorf("%q filter = %q, want %q", tc.sql, got, tc.want)
		}
	}
}

func TestParseBooleanStructure(t *testing.T) {
	q := parse(t, "SELECT * FROM lineitem WHERE qty < 5 AND (flag = 'A' OR flag = 'B') AND NOT returned = TRUE")
	and, ok := q.Filter.(*expr.And)
	if !ok {
		t.Fatalf("top level is %T, want AND", q.Filter)
	}
	if len(and.Preds) != 3 {
		t.Fatalf("AND arity = %d", len(and.Preds))
	}
	if _, ok := and.Preds[1].(*expr.Or); !ok {
		t.Errorf("middle term is %T, want OR", and.Preds[1])
	}
	if _, ok := and.Preds[2].(*expr.Not); !ok {
		t.Errorf("last term is %T, want NOT", and.Preds[2])
	}
}

func TestParseBetweenInsideAnd(t *testing.T) {
	// BETWEEN's AND must not terminate the conjunction.
	q := parse(t, "SELECT * FROM lineitem WHERE qty BETWEEN 1 AND 10 AND orderkey < 100")
	and, ok := q.Filter.(*expr.And)
	if !ok || len(and.Preds) != 2 {
		t.Fatalf("filter = %s", q.Filter)
	}
}

func TestParseCountOnly(t *testing.T) {
	q := parse(t, "SELECT COUNT(*) FROM lineitem WHERE qty < 5")
	if !q.CountOnly || q.GroupBy != nil {
		t.Errorf("query = %+v", q)
	}
}

func TestParseGroupBy(t *testing.T) {
	q := parse(t, "SELECT flag, COUNT(*), SUM(qty), AVG(price) FROM lineitem GROUP BY flag")
	if q.GroupBy == nil {
		t.Fatal("no group by")
	}
	g := q.GroupBy
	if len(g.GroupCols) != 1 || g.GroupCols[0] != 3 {
		t.Errorf("group cols = %v", g.GroupCols)
	}
	if len(g.Aggs) != 3 || g.Aggs[0].Func != expr.Count || g.Aggs[1].Func != expr.Sum ||
		g.Aggs[1].Col != 1 || g.Aggs[2].Func != expr.Avg || g.Aggs[2].Col != 2 {
		t.Errorf("aggs = %v", g.Aggs)
	}
}

func TestParseScalarAggregates(t *testing.T) {
	q := parse(t, "SELECT MIN(qty), MAX(qty) FROM lineitem")
	if q.GroupBy == nil || len(q.GroupBy.GroupCols) != 0 || len(q.GroupBy.Aggs) != 2 {
		t.Errorf("query = %+v", q.GroupBy)
	}
}

func TestParseOrderLimit(t *testing.T) {
	q := parse(t, "SELECT flag, COUNT(*) FROM lineitem GROUP BY flag ORDER BY 2 LIMIT 10")
	if q.OrderBy != 1 || q.Limit != 10 {
		t.Errorf("orderby=%d limit=%d", q.OrderBy, q.Limit)
	}
}

func TestParseStringEscapes(t *testing.T) {
	q := parse(t, "SELECT * FROM lineitem WHERE flag = 'it''s'")
	cmp := q.Filter.(*expr.Cmp)
	if cmp.Val.S != "it's" {
		t.Errorf("string literal = %q", cmp.Val.S)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		sql     string
		wantSub string
	}{
		{"", "expected SELECT"},
		{"SELECT FROM lineitem", "expected FROM"},
		{"SELECT * FROM", "expected table name"},
		{"SELECT * FROM ghost", "unknown table"},
		{"SELECT nope FROM lineitem", "unknown column"},
		{"SELECT * FROM lineitem WHERE", "expected column name"},
		{"SELECT * FROM lineitem WHERE qty", "expected comparison"},
		{"SELECT * FROM lineitem WHERE qty <", "expected literal"},
		{"SELECT * FROM lineitem WHERE qty = 'x'", "string literal for non-string"},
		{"SELECT * FROM lineitem WHERE flag = 5", "numeric literal for non-numeric"},
		{"SELECT * FROM lineitem WHERE price BETWEEN 1 AND 2", "BETWEEN requires"},
		{"SELECT * FROM lineitem WHERE qty LIKE '%x%'", "LIKE requires"},
		{"SELECT * FROM lineitem WHERE flag LIKE 5", "LIKE takes a string"},
		{"SELECT * FROM lineitem trailing", "trailing input"},
		{"SELECT SUM(*) FROM lineitem", "bad aggregate argument"},
		{"SELECT qty FROM lineitem GROUP BY qty", "GROUP BY without aggregates"},
		{"SELECT price, COUNT(*) FROM lineitem GROUP BY flag", "not in GROUP BY"},
		{"SELECT * FROM lineitem GROUP BY flag", "not supported"},
		{"SELECT * FROM lineitem ORDER BY zero", "output column number"},
		{"SELECT * FROM lineitem LIMIT -3", "bad LIMIT"},
		{"SELECT * FROM lineitem WHERE qty = 5 OR", "expected column name"},
		{"SELECT * FROM lineitem WHERE (qty = 5", "expected ')'"},
		{"SELECT * FROM lineitem WHERE flag = 'unterminated", "unterminated string"},
		{"SELECT * FROM lineitem WHERE qty ! 5", "unexpected '!'"},
		{"SELECT * FROM lineitem WHERE qty = 5 ; DROP", "unexpected character"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.sql, fakeCatalog{})
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", tc.sql, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Parse(%q) error = %q, want substring %q", tc.sql, err, tc.wantSub)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q := parse(t, "select flag, count(*) from lineitem where qty between 1 and 5 group by flag order by 2 limit 3")
	if q.GroupBy == nil || q.Limit != 3 || q.OrderBy != 1 || q.Filter == nil {
		t.Errorf("query = %+v", q)
	}
}

func TestParsedQueryStringRoundTrips(t *testing.T) {
	// The produced query must render and validate.
	q := parse(t, "SELECT flag, COUNT(*) FROM lineitem WHERE qty < 5 GROUP BY flag")
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.String(), "GROUP BY") {
		t.Errorf("String() = %q", q.String())
	}
}

func TestIdentifierLikeAggregateName(t *testing.T) {
	// A column literally named "sum" must still work when not followed
	// by parens — the schema has none, so check error path mentions the
	// column, not a syntax failure.
	_, err := Parse("SELECT sum FROM lineitem", fakeCatalog{})
	if err == nil || !strings.Contains(err.Error(), "unknown column") {
		t.Errorf("err = %v", err)
	}
}
