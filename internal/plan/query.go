// Package plan implements query planning for the data-flow engine: a
// declarative query form, physical plans annotated with *placement*
// (which device along the data path hosts each operator), a cost model
// in which data movement is a first-class term (paper Section 1: "the
// optimizers will need to consider data movement cost in a disaggregated
// setting as a first-class concern"), and an optimizer that enumerates
// placement variants and ranks them.
//
// Plans deliberately carry several variants (Section 7.3): the scheduler
// picks which variant to activate at runtime depending on interference.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/expr"
)

// Query is the declarative form the engine accepts: a scan with optional
// filter, projection and aggregation. Joins are planned separately (see
// netsim.DistributedJoin); this linear shape is what flows down the
// Figure 6 pipeline.
type Query struct {
	// Table is the scanned table's name.
	Table string
	// Filter restricts rows; nil for none. Column indices refer to the
	// table schema.
	Filter expr.Predicate
	// Projection lists returned columns; nil for all. Ignored when
	// GroupBy or CountOnly is set.
	Projection []int
	// GroupBy aggregates the result; nil for none.
	GroupBy *expr.GroupBy
	// CountOnly marks a bare COUNT(*) query, which Section 4.4 says can
	// complete entirely on a NIC.
	CountOnly bool
	// OrderBy, when >= 0, sorts the result by that output column
	// (BIGINT ascending). Applied on the compute node.
	OrderBy int
	// Limit truncates the result when > 0.
	Limit int
}

// NewQuery returns a query over table with no operations and no order.
func NewQuery(table string) *Query {
	return &Query{Table: table, OrderBy: -1}
}

// WithFilter sets the filter.
func (q *Query) WithFilter(p expr.Predicate) *Query { q.Filter = p; return q }

// WithProjection sets the projection.
func (q *Query) WithProjection(cols ...int) *Query { q.Projection = cols; return q }

// WithGroupBy sets the aggregation.
func (q *Query) WithGroupBy(g expr.GroupBy) *Query { q.GroupBy = &g; return q }

// WithCount marks the query as COUNT(*).
func (q *Query) WithCount() *Query { q.CountOnly = true; return q }

// WithOrderBy sets the output sort column.
func (q *Query) WithOrderBy(col int) *Query { q.OrderBy = col; return q }

// WithLimit sets the row limit.
func (q *Query) WithLimit(n int) *Query { q.Limit = n; return q }

// Validate rejects malformed queries.
func (q *Query) Validate() error {
	if q.Table == "" {
		return fmt.Errorf("plan: query without table")
	}
	if q.CountOnly && q.GroupBy != nil {
		return fmt.Errorf("plan: CountOnly and GroupBy are mutually exclusive")
	}
	if q.Limit < 0 {
		return fmt.Errorf("plan: negative limit")
	}
	return nil
}

// String renders the query in SQL-ish form.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	switch {
	case q.CountOnly:
		b.WriteString("COUNT(*)")
	case q.GroupBy != nil:
		var parts []string
		for _, c := range q.GroupBy.GroupCols {
			parts = append(parts, fmt.Sprintf("col%d", c))
		}
		for _, a := range q.GroupBy.Aggs {
			parts = append(parts, a.String())
		}
		b.WriteString(strings.Join(parts, ", "))
	case q.Projection != nil:
		var parts []string
		for _, c := range q.Projection {
			parts = append(parts, fmt.Sprintf("col%d", c))
		}
		b.WriteString(strings.Join(parts, ", "))
	default:
		b.WriteString("*")
	}
	fmt.Fprintf(&b, " FROM %s", q.Table)
	if q.Filter != nil {
		fmt.Fprintf(&b, " WHERE %s", q.Filter)
	}
	if q.GroupBy != nil && len(q.GroupBy.GroupCols) > 0 {
		var parts []string
		for _, c := range q.GroupBy.GroupCols {
			parts = append(parts, fmt.Sprintf("col%d", c))
		}
		fmt.Fprintf(&b, " GROUP BY %s", strings.Join(parts, ", "))
	}
	if q.OrderBy >= 0 {
		fmt.Fprintf(&b, " ORDER BY out%d", q.OrderBy)
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}
