package encoding

import (
	"encoding/binary"
	"fmt"
)

// The LZ compressor below is a small, dependency-free LZ77 variant used to
// model the general-purpose block compression that cloud storage layers
// apply before shipping data (paper Section 2.2: serialization and
// compression are mandatory steps of the cloud data path). The format is a
// stream of operations:
//
//	0x00 <uvarint len> <len literal bytes>
//	0x01 <uvarint distance> <uvarint length>   -- copy from history
//
// Matches are found greedily with a hash table over 4-byte prefixes.

const (
	lzOpLiteral = 0x00
	lzOpMatch   = 0x01
	lzMinMatch  = 4
	lzHashBits  = 15
)

// CompressLZ compresses data. The output always decompresses back to the
// exact input; incompressible input grows by a small framing overhead.
func CompressLZ(data []byte) []byte {
	out := putUvarint(nil, uint64(len(data)))
	if len(data) == 0 {
		return out
	}
	var table [1 << lzHashBits]int // position+1 of last occurrence of hash
	litStart := 0
	i := 0
	flushLiterals := func(end int) {
		if end > litStart {
			out = append(out, lzOpLiteral)
			out = putUvarint(out, uint64(end-litStart))
			out = append(out, data[litStart:end]...)
		}
	}
	for i+lzMinMatch <= len(data) {
		h := lzHash(data[i:])
		cand := table[h] - 1
		table[h] = i + 1
		if cand >= 0 && cand < i && data[cand] == data[i] &&
			data[cand+1] == data[i+1] && data[cand+2] == data[i+2] && data[cand+3] == data[i+3] {
			// Extend the match.
			length := lzMinMatch
			for i+length < len(data) && data[cand+length] == data[i+length] {
				length++
			}
			flushLiterals(i)
			out = append(out, lzOpMatch)
			out = putUvarint(out, uint64(i-cand))
			out = putUvarint(out, uint64(length))
			i += length
			litStart = i
			continue
		}
		i++
	}
	flushLiterals(len(data))
	return out
}

// DecompressLZ reverses CompressLZ.
func DecompressLZ(data []byte) ([]byte, error) {
	size, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, fmt.Errorf("%w: bad LZ header", ErrCorrupt)
	}
	data = data[sz:]
	out := make([]byte, 0, size)
	for uint64(len(out)) < size {
		if len(data) == 0 {
			return nil, fmt.Errorf("%w: LZ stream truncated", ErrCorrupt)
		}
		op := data[0]
		data = data[1:]
		switch op {
		case lzOpLiteral:
			l, sz := binary.Uvarint(data)
			if sz <= 0 || uint64(len(data)-sz) < l {
				return nil, fmt.Errorf("%w: LZ literal truncated", ErrCorrupt)
			}
			data = data[sz:]
			out = append(out, data[:l]...)
			data = data[l:]
		case lzOpMatch:
			dist, sz := binary.Uvarint(data)
			if sz <= 0 {
				return nil, fmt.Errorf("%w: LZ match distance truncated", ErrCorrupt)
			}
			data = data[sz:]
			length, sz := binary.Uvarint(data)
			if sz <= 0 {
				return nil, fmt.Errorf("%w: LZ match length truncated", ErrCorrupt)
			}
			data = data[sz:]
			if dist == 0 || dist > uint64(len(out)) {
				return nil, fmt.Errorf("%w: LZ match distance %d out of range", ErrCorrupt, dist)
			}
			// Byte-at-a-time copy: matches may overlap their own output.
			start := len(out) - int(dist)
			for k := uint64(0); k < length; k++ {
				out = append(out, out[start+int(k)])
			}
		default:
			return nil, fmt.Errorf("%w: unknown LZ op 0x%02x", ErrCorrupt, op)
		}
	}
	if uint64(len(out)) != size {
		return nil, fmt.Errorf("%w: LZ output size mismatch", ErrCorrupt)
	}
	return out, nil
}

func lzHash(b []byte) uint32 {
	v := binary.LittleEndian.Uint32(b)
	return (v * 2654435761) >> (32 - lzHashBits)
}
