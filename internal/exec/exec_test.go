package exec

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/columnar"
	"repro/internal/expr"
	"repro/internal/flow"
)

func kvSchema() *columnar.Schema {
	return columnar.NewSchema(
		columnar.Field{Name: "k", Type: columnar.Int64},
		columnar.Field{Name: "v", Type: columnar.Int64},
	)
}

func kvBatch(ks, vs []int64) *columnar.Batch {
	return columnar.BatchOf(kvSchema(), columnar.FromInt64s(ks), columnar.FromInt64s(vs))
}

// runStage drives a stage with the given batches and collects output.
func runStage(t *testing.T, s flow.Stage, in ...*columnar.Batch) []*columnar.Batch {
	t.Helper()
	var out []*columnar.Batch
	emit := func(b *columnar.Batch) error { out = append(out, b); return nil }
	for _, b := range in {
		if err := s.Process(b, emit); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(emit); err != nil {
		t.Fatal(err)
	}
	return out
}

func allRows(batches []*columnar.Batch) [][]columnar.Value {
	var rows [][]columnar.Value
	for _, b := range batches {
		for i := 0; i < b.NumRows(); i++ {
			rows = append(rows, b.Row(i))
		}
	}
	return rows
}

func TestFilterStage(t *testing.T) {
	s := &FilterStage{Pred: expr.NewCmp(1, expr.Ge, columnar.IntValue(20))}
	out := runStage(t, s,
		kvBatch([]int64{1, 2, 3}, []int64{10, 20, 30}),
		kvBatch([]int64{4}, []int64{5}), // fully filtered: emits nothing
	)
	rows := allRows(out)
	if len(rows) != 2 || rows[0][0].I != 2 || rows[1][0].I != 3 {
		t.Errorf("rows = %v", rows)
	}
	if s.Name() == "" {
		t.Error("empty Name")
	}
}

func TestProjectStage(t *testing.T) {
	out := runStage(t, &ProjectStage{Columns: []int{1}},
		kvBatch([]int64{1}, []int64{10}))
	if out[0].NumCols() != 1 || out[0].Schema().Fields[0].Name != "v" {
		t.Errorf("schema = %s", out[0].Schema())
	}
}

func TestHashStageAppendsConsistentHashes(t *testing.T) {
	out := runStage(t, &HashStage{KeyCol: 0},
		kvBatch([]int64{7, 7, 8}, []int64{1, 2, 3}))
	b := out[0]
	if b.NumCols() != 3 || b.Schema().Fields[2].Name != "hash" {
		t.Fatalf("schema = %s", b.Schema())
	}
	h := b.Col(2).Int64s()
	if h[0] != h[1] {
		t.Error("equal keys hashed differently")
	}
	if h[0] == h[2] {
		t.Error("different keys collided (suspicious)")
	}
	// The appended hash matches HashValue with the join seed: the
	// receiving NIC pre-computes exactly what the join would.
	want := int64(HashValue(b.Col(0), 0, SeedJoin))
	if h[0] != want {
		t.Errorf("hash = %d, want %d", h[0], want)
	}
}

func TestCountStage(t *testing.T) {
	out := runStage(t, &CountStage{},
		kvBatch([]int64{1, 2}, []int64{1, 2}),
		kvBatch([]int64{3}, []int64{3}))
	if len(out) != 1 || out[0].NumRows() != 1 {
		t.Fatalf("output shape wrong")
	}
	if got := out[0].Col(0).Int64s()[0]; got != 3 {
		t.Errorf("count = %d, want 3", got)
	}
}

func TestPreAggThenFinalStage(t *testing.T) {
	spec := expr.GroupBy{GroupCols: []int{0}, Aggs: []expr.AggSpec{{Func: expr.Count}, {Func: expr.Sum, Col: 1}}}
	pre := &PreAggStage{Agg: expr.NewPartialAggregator(spec, kvSchema(), 2), Raw: true}
	partials := runStage(t, pre,
		kvBatch([]int64{1, 2, 3, 1}, []int64{10, 20, 30, 40}),
		kvBatch([]int64{2, 4}, []int64{50, 60}))

	final := &FinalAggStage{Agg: expr.NewFinalAggregator(spec, kvSchema()), Raw: false}
	results := runStage(t, final, partials...)
	if len(results) != 1 {
		t.Fatalf("final emitted %d batches", len(results))
	}
	res := results[0]
	if res.NumRows() != 4 {
		t.Fatalf("groups = %d, want 4", res.NumRows())
	}
	sums := map[int64]int64{}
	for i := 0; i < res.NumRows(); i++ {
		sums[res.Col(0).Int64s()[i]] = res.Col(2).Int64s()[i]
	}
	want := map[int64]int64{1: 50, 2: 70, 3: 30, 4: 60}
	for k, w := range want {
		if sums[k] != w {
			t.Errorf("sum[%d] = %d, want %d", k, sums[k], w)
		}
	}
}

func TestTopKStage(t *testing.T) {
	s := &TopKStage{K: 3, ByCol: 1}
	out := runStage(t, s,
		kvBatch([]int64{1, 2, 3, 4, 5}, []int64{50, 10, 90, 20, 70}),
		kvBatch([]int64{6}, []int64{80}))
	rows := allRows(out)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	wantKeys := []int64{3, 6, 5} // by v: 90, 80, 70
	for i, w := range wantKeys {
		if rows[i][0].I != w {
			t.Errorf("top-%d key = %d, want %d", i, rows[i][0].I, w)
		}
	}
}

func TestTopKFewerThanK(t *testing.T) {
	out := runStage(t, &TopKStage{K: 10, ByCol: 1},
		kvBatch([]int64{1, 2}, []int64{5, 9}))
	if len(allRows(out)) != 2 {
		t.Error("top-k with short input lost rows")
	}
}

func TestSortStage(t *testing.T) {
	schema := kvSchema()
	b := columnar.NewBatch(schema, 4)
	b.AppendRow(columnar.IntValue(3), columnar.IntValue(30))
	b.AppendRow(columnar.NullValue(columnar.Int64), columnar.IntValue(0))
	b.AppendRow(columnar.IntValue(1), columnar.IntValue(10))
	out := runStage(t, &SortStage{ByCol: 0}, b, kvBatch([]int64{2}, []int64{20}))
	rows := allRows(out)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !rows[0][0].Null {
		t.Error("NULL not first")
	}
	for i, w := range []int64{1, 2, 3} {
		if rows[i+1][0].I != w {
			t.Errorf("row %d key = %v, want %d", i+1, rows[i+1][0], w)
		}
	}
}

func TestLimitStage(t *testing.T) {
	out := runStage(t, &LimitStage{N: 4},
		kvBatch([]int64{1, 2, 3}, []int64{1, 2, 3}),
		kvBatch([]int64{4, 5, 6}, []int64{4, 5, 6}),
		kvBatch([]int64{7}, []int64{7}))
	if n := len(allRows(out)); n != 4 {
		t.Errorf("rows = %d, want 4", n)
	}
}

func TestHashTableBuildProbe(t *testing.T) {
	build := kvBatch([]int64{1, 2, 2}, []int64{100, 200, 201})
	table := NewHashTable(kvSchema(), 0)
	table.Build(build)
	if table.Rows() != 3 {
		t.Errorf("Rows = %d", table.Rows())
	}
	probeSchema := columnar.NewSchema(
		columnar.Field{Name: "k", Type: columnar.Int64},
		columnar.Field{Name: "x", Type: columnar.String},
	)
	probe := columnar.BatchOf(probeSchema,
		columnar.FromInt64s([]int64{2, 3, 1}),
		columnar.FromStrings([]string{"a", "b", "c"}))
	out := table.Probe(probe, 0)
	// k=2 matches 2 build rows, k=3 none, k=1 one: 3 output rows.
	if out.NumRows() != 3 {
		t.Fatalf("joined rows = %d, want 3", out.NumRows())
	}
	// Output schema: probe(k,x) then build(k->r_k, v).
	names := []string{"k", "x", "r_k", "v"}
	for i, n := range names {
		if out.Schema().Fields[i].Name != n {
			t.Errorf("field %d = %s, want %s", i, out.Schema().Fields[i].Name, n)
		}
	}
	// Verify a joined value pair.
	for i := 0; i < out.NumRows(); i++ {
		if out.Col(0).Int64s()[i] != out.Col(2).Int64s()[i] {
			t.Error("join key mismatch in output")
		}
	}
}

func TestHashTableNullKeysNeverMatch(t *testing.T) {
	schema := kvSchema()
	build := columnar.NewBatch(schema, 2)
	build.AppendRow(columnar.NullValue(columnar.Int64), columnar.IntValue(1))
	build.AppendRow(columnar.IntValue(5), columnar.IntValue(2))
	table := NewHashTable(schema, 0)
	table.Build(build)
	if table.Rows() != 1 {
		t.Errorf("null build key inserted")
	}
	probe := columnar.NewBatch(schema, 1)
	probe.AppendRow(columnar.NullValue(columnar.Int64), columnar.IntValue(9))
	if out := table.Probe(probe, 0); out.NumRows() != 0 {
		t.Error("null probe key matched")
	}
}

func TestHashTableStringKeys(t *testing.T) {
	schema := columnar.NewSchema(
		columnar.Field{Name: "name", Type: columnar.String},
		columnar.Field{Name: "v", Type: columnar.Int64})
	build := columnar.BatchOf(schema,
		columnar.FromStrings([]string{"x", "y"}),
		columnar.FromInt64s([]int64{1, 2}))
	table := NewHashTable(schema, 0)
	table.Build(build)
	probe := columnar.BatchOf(schema,
		columnar.FromStrings([]string{"y", "z"}),
		columnar.FromInt64s([]int64{0, 0}))
	out := table.Probe(probe, 0)
	if out.NumRows() != 1 || out.Col(3).Int64s()[0] != 2 {
		t.Errorf("string join wrong: %d rows", out.NumRows())
	}
}

func TestHashJoinStageAndBuildStage(t *testing.T) {
	table := NewHashTable(kvSchema(), 0)
	buildStage := &BuildStage{Table: table}
	runStage(t, buildStage, kvBatch([]int64{1, 2}, []int64{10, 20}))
	join := &HashJoinStage{Table: table, ProbeKey: 0}
	out := runStage(t, join,
		kvBatch([]int64{2, 9}, []int64{0, 0}),
		kvBatch([]int64{9}, []int64{0})) // no matches: no emission
	rows := allRows(out)
	if len(rows) != 1 || rows[0][3].I != 20 {
		t.Errorf("rows = %v", rows)
	}
}

func TestVolcanoPipelineEquivalence(t *testing.T) {
	// The same query through both models must agree:
	// SELECT k, COUNT(*), SUM(v) FROM t WHERE v >= 10 GROUP BY k.
	ks := []int64{1, 2, 1, 3, 2, 1, 3, 3}
	vs := []int64{5, 20, 30, 40, 8, 50, 60, 9}
	pred := expr.NewCmp(1, expr.Ge, columnar.IntValue(10))
	spec := expr.GroupBy{GroupCols: []int{0}, Aggs: []expr.AggSpec{{Func: expr.Count}, {Func: expr.Sum, Col: 1}}}

	// Volcano.
	var it Iterator = NewSliceScan(kvSchema(), []*columnar.Batch{kvBatch(ks[:4], vs[:4]), kvBatch(ks[4:], vs[4:])})
	it = &FilterIter{In: it, Pred: pred}
	it = &AggIter{In: it, Spec: spec}
	volcanoOut, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}

	// Push pipeline.
	p := &flow.Pipeline{
		Name: "push",
		Source: func(emit flow.Emit) error {
			if err := emit(kvBatch(ks[:4], vs[:4])); err != nil {
				return err
			}
			return emit(kvBatch(ks[4:], vs[4:]))
		},
		Stages: []flow.Placed{
			{Stage: &FilterStage{Pred: pred}},
			{Stage: &FinalAggStage{Agg: expr.NewFinalAggregator(spec, kvSchema()), Raw: true}},
		},
	}
	var pushOut []*columnar.Batch
	if _, err := p.Run(context.Background(), func(b *columnar.Batch) error { pushOut = append(pushOut, b); return nil }); err != nil {
		t.Fatal(err)
	}

	vr := allRows(volcanoOut)
	pr := allRows(pushOut)
	if len(vr) != len(pr) {
		t.Fatalf("row counts differ: %d vs %d", len(vr), len(pr))
	}
	for i := range vr {
		for c := range vr[i] {
			if !vr[i][c].Equal(pr[i][c]) {
				t.Errorf("row %d col %d: %v vs %v", i, c, vr[i][c], pr[i][c])
			}
		}
	}
}

func TestVolcanoJoin(t *testing.T) {
	build := NewSliceScan(kvSchema(), []*columnar.Batch{kvBatch([]int64{1, 2}, []int64{100, 200})})
	probe := NewSliceScan(kvSchema(), []*columnar.Batch{kvBatch([]int64{2, 2, 3}, []int64{1, 2, 3})})
	it := &HashJoinIter{Build: build, Probe: probe, BuildKey: 0, ProbeKey: 0}
	out, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	rows := allRows(out)
	if len(rows) != 2 {
		t.Fatalf("joined rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r[3].I != 200 {
			t.Errorf("joined build value = %v", r[3])
		}
	}
}

func TestVolcanoSortLimit(t *testing.T) {
	scan := NewSliceScan(kvSchema(), []*columnar.Batch{kvBatch([]int64{3, 1, 2}, []int64{0, 0, 0})})
	it := &LimitIter{In: &SortIter{In: scan, ByCol: 0}, N: 2}
	out, err := Drain(it)
	if err != nil {
		t.Fatal(err)
	}
	rows := allRows(out)
	if len(rows) != 2 || rows[0][0].I != 1 || rows[1][0].I != 2 {
		t.Errorf("rows = %v", rows)
	}
}

func TestFuncScan(t *testing.T) {
	n := 0
	it := NewFuncScan(kvSchema(), func() (*columnar.Batch, error) {
		if n >= 2 {
			return nil, nil
		}
		n++
		return kvBatch([]int64{int64(n)}, []int64{0}), nil
	})
	out, err := Drain(it)
	if err != nil || len(out) != 2 {
		t.Fatalf("FuncScan drained %d batches, err %v", len(out), err)
	}
}

func TestPartitionOfRange(t *testing.T) {
	for n := 1; n <= 17; n++ {
		counts := make([]int, n)
		for i := 0; i < 10000; i++ {
			p := PartitionOf(mix64(uint64(i)), n)
			if p < 0 || p >= n {
				t.Fatalf("partition %d out of [0,%d)", p, n)
			}
			counts[p]++
		}
		// Balance within 3x of ideal for n <= 17.
		for p, c := range counts {
			if c > 3*10000/n+10 {
				t.Errorf("n=%d partition %d got %d of 10000", n, p, c)
			}
		}
	}
}

// Property: HashValue is deterministic and respects equality for int64.
func TestHashValueProperty(t *testing.T) {
	f := func(a, b int64) bool {
		col := columnar.FromInt64s([]int64{a, b, a})
		h0 := HashValue(col, 0, SeedJoin)
		h1 := HashValue(col, 1, SeedJoin)
		h2 := HashValue(col, 2, SeedJoin)
		if h0 != h2 {
			return false
		}
		if a != b && h0 == h1 {
			// 64-bit collision: astronomically unlikely for quick's
			// inputs; treat as failure.
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: join output row count equals the sum over probe rows of
// build-side multiplicity.
func TestJoinCardinalityProperty(t *testing.T) {
	f := func(buildKeys, probeKeys []uint8) bool {
		if len(buildKeys) == 0 {
			buildKeys = []uint8{0}
		}
		bk := make([]int64, len(buildKeys))
		mult := map[int64]int{}
		for i, k := range buildKeys {
			bk[i] = int64(k % 16)
			mult[bk[i]]++
		}
		pk := make([]int64, len(probeKeys))
		want := 0
		for i, k := range probeKeys {
			pk[i] = int64(k % 16)
			want += mult[pk[i]]
		}
		table := NewHashTable(kvSchema(), 0)
		table.Build(kvBatch(bk, make([]int64, len(bk))))
		out := table.Probe(kvBatch(pk, make([]int64, len(pk))), 0)
		return out.NumRows() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
