// Elastic demonstrates the Section 7.4 argument ("No More Buffer
// Pools"): as tables grow, the buffer-pool engine's compute-side memory
// tracks the data and collapses into thrashing when the pool is
// undersized, while the data-flow engine's footprint stays flat because
// the compute layer is stateless.
//
//	go run ./examples/elastic
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	poolBytes := 1 * sim.MB
	fmt.Printf("Section 7.4: compute-side memory, buffer pool capacity %s\n\n", poolBytes)
	fmt.Printf("%-10s %-12s %-16s %-16s %-10s\n",
		"rows", "table size", "dataflow peak", "volcano peak", "pool hit%")

	for _, rows := range []int{10000, 20000, 40000, 80000} {
		cfg := workload.DefaultLineitemConfig(rows)
		data := workload.GenLineitem(cfg)
		q := plan.NewQuery("lineitem").WithGroupBy(workload.PricingSummary())

		df := core.NewDataFlowEngine(fabric.NewCluster(fabric.DefaultClusterConfig()))
		must(df.CreateTable("lineitem", workload.LineitemSchema()))
		must(df.Load("lineitem", data))
		dfRes, err := df.Execute(context.Background(), q)
		must(err)

		vo := core.NewVolcanoEngine(fabric.NewCluster(fabric.LegacyClusterConfig()), poolBytes)
		vo.Storage.SegmentRows = 8192 // finer pages make the pool dynamics visible
		must(vo.CreateTable("lineitem", workload.LineitemSchema()))
		must(vo.Load("lineitem", data))
		// Two passes so the pool shows its steady-state hit rate.
		_, err = vo.Execute(context.Background(), q)
		must(err)
		voRes, err := vo.Execute(context.Background(), q)
		must(err)

		fmt.Printf("%-10d %-12s %-16s %-16s %.0f%%\n",
			rows,
			sim.Bytes(data.ByteSize()).String(),
			dfRes.Stats.PeakMemory.String(),
			voRes.Stats.PeakMemory.String(),
			vo.Pool.Stats().HitRate()*100)
	}

	fmt.Println("\nthe dataflow engine's compute layer is stateless: its footprint is")
	fmt.Println("in-flight batches plus final aggregate state, independent of table size —")
	fmt.Println("which is what makes it elastic (VMs can move, scale, and cold-start).")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
