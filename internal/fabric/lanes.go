package fabric

import (
	"sync"

	"repro/internal/sim"
)

// laneMeter accumulates per-lane virtual busy time next to a device or
// link's main sim.Meter. Lanes model the concurrent processing units of
// a resource (cores, flash channels, DMA queues): work charged to
// different lanes overlaps in time, work on the same lane serializes.
//
// The main meter stays authoritative for totals — lane charging adds
// the identical Snapshot to it — so enabling parallelism never changes
// metered byte/busy sums, only the makespan engines derive from them.
// All methods are safe for concurrent use.
type laneMeter struct {
	mu   sync.Mutex
	busy []sim.VTime
}

// add folds t into the lane's busy time, growing the lane table on
// demand. Negative lanes fold into lane 0.
func (lm *laneMeter) add(lane int, t sim.VTime) {
	if lane < 0 {
		lane = 0
	}
	lm.mu.Lock()
	for len(lm.busy) <= lane {
		lm.busy = append(lm.busy, 0)
	}
	lm.busy[lane] += t
	lm.mu.Unlock()
}

// snapshot returns a consistent copy of the per-lane busy times.
func (lm *laneMeter) snapshot() []sim.VTime {
	lm.mu.Lock()
	out := make([]sim.VTime, len(lm.busy))
	copy(out, lm.busy)
	lm.mu.Unlock()
	return out
}

// reset clears all lanes.
func (lm *laneMeter) reset() {
	lm.mu.Lock()
	lm.busy = lm.busy[:0]
	lm.mu.Unlock()
}

// EffectiveBusy folds a resource's total busy delta and its per-lane
// busy deltas into the virtual time the resource actually occupies the
// critical path: lane-charged work runs on parallel units, so only the
// slowest lane counts, while everything charged without a lane stays
// serial. With no lane activity (or a single lane) this reduces to the
// plain busy delta, so serial runs are bit-identical to the pre-lane
// model.
func EffectiveBusy(busy sim.VTime, lanesBefore, lanesAfter []sim.VTime) sim.VTime {
	var sum, max sim.VTime
	for i, after := range lanesAfter {
		var before sim.VTime
		if i < len(lanesBefore) {
			before = lanesBefore[i]
		}
		d := after - before
		sum += d
		if d > max {
			max = d
		}
	}
	serial := busy - sum
	if serial < 0 {
		serial = 0
	}
	return serial + max
}
