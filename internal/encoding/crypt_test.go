package encoding

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestEncryptDecryptRoundTrip(t *testing.T) {
	k := NewStreamKey([]byte("flow-42"))
	for seq, msg := range []string{"", "x", "hello world", string(bytes.Repeat([]byte{7}, 10000))} {
		sealed, err := k.Encrypt(uint64(seq), []byte(msg))
		if err != nil {
			t.Fatal(err)
		}
		got, err := k.Decrypt(sealed)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != msg {
			t.Fatalf("round trip changed message (len %d)", len(msg))
		}
	}
}

func TestEncryptDistinctSequences(t *testing.T) {
	k := NewStreamKey([]byte("s"))
	a, _ := k.Encrypt(1, []byte("same plaintext"))
	b, _ := k.Encrypt(2, []byte("same plaintext"))
	if bytes.Equal(a, b) {
		t.Fatal("distinct sequence numbers produced identical ciphertexts")
	}
}

func TestDecryptRejectsTampering(t *testing.T) {
	k := NewStreamKey([]byte("s"))
	sealed, _ := k.Encrypt(9, []byte("sensitive tuple data"))
	for _, pos := range []int{0, nonceSize + 2, len(sealed) - 1} {
		mangled := append([]byte(nil), sealed...)
		mangled[pos] ^= 0x01
		if _, err := k.Decrypt(mangled); !errors.Is(err, ErrAuth) {
			t.Errorf("tamper at %d: err = %v, want ErrAuth", pos, err)
		}
	}
	if _, err := k.Decrypt(sealed[:10]); err == nil {
		t.Error("truncated message accepted")
	}
}

func TestDecryptRejectsWrongKey(t *testing.T) {
	a := NewStreamKey([]byte("alpha"))
	b := NewStreamKey([]byte("beta"))
	sealed, _ := a.Encrypt(1, []byte("payload"))
	if _, err := b.Decrypt(sealed); !errors.Is(err, ErrAuth) {
		t.Errorf("wrong key: err = %v, want ErrAuth", err)
	}
}

func TestEncryptProperty(t *testing.T) {
	k := NewStreamKey([]byte("prop"))
	f := func(seq uint64, data []byte) bool {
		sealed, err := k.Encrypt(seq, data)
		if err != nil {
			return false
		}
		got, err := k.Decrypt(sealed)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
